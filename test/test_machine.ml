(* Concrete execution: semantics of the RAM machine, every fault kind,
   the alloca failure model, and recursion. Every program goes through
   [Diff_engines.run], which executes it under both the interpreter and
   the compiled engine and asserts identical observable behaviour. *)

let run ?config ?(args = []) src ~entry =
  let prog = Ram.Lower.lower_source src in
  Diff_engines.run ?config ~args prog ~entry

(* Run [entry] with [args] and return the value left in a global named
   "result". *)
let run_result ?config ?(args = []) src ~entry =
  let src = "int result = 0;\n" ^ src in
  let prog = Ram.Lower.lower_source src in
  match Diff_engines.run ?config ~args prog ~entry with
  | Machine.Halted, m ->
    (match Machine.read_word m (Machine.global_addr m "result") with
     | Ok v -> v
     | Error _ -> Alcotest.fail "result unreadable")
  | Machine.Faulted (f, site), _ ->
    Alcotest.failf "unexpected fault: %s at %s" (Machine.fault_to_string f)
      site.Machine.site_fn

let expect_fault ?config ?(args = []) src ~entry expected =
  let outcome, _ = run ?config ~args src ~entry in
  match outcome with
  | Machine.Faulted (f, _) when f = expected -> ()
  | Machine.Faulted (f, _) ->
    Alcotest.failf "wrong fault: got %s, wanted %s" (Machine.fault_to_string f)
      (Machine.fault_to_string expected)
  | Machine.Halted -> Alcotest.fail "expected a fault but the run halted"

let test_arithmetic () =
  Alcotest.(check int) "sum" 15
    (run_result ~args:[ 5 ] "void f(int n) { int i; for (i = 1; i <= n; i++) result += i; }"
       ~entry:"f");
  Alcotest.(check int) "division trunc" (-3)
    (run_result ~args:[ -7; 2 ] "void f(int a, int b) { result = a / b; }" ~entry:"f");
  Alcotest.(check int) "modulo" 1
    (run_result ~args:[ 7; 2 ] "void f(int a, int b) { result = a % b; }" ~entry:"f");
  Alcotest.(check int) "wraparound" (-2147483648)
    (run_result ~args:[ 2147483647 ] "void f(int x) { result = x + 1; }" ~entry:"f");
  Alcotest.(check int) "ternary" 10
    (run_result ~args:[ 1 ] "void f(int c) { result = c ? 10 : 20; }" ~entry:"f")

let test_short_circuit_semantics () =
  (* The right operand of && must not run when the left is false: here
     it would divide by zero. *)
  Alcotest.(check int) "and skips rhs" 0
    (run_result ~args:[ 0 ] "void f(int x) { result = (x != 0 && 10 / x > 0); }" ~entry:"f");
  Alcotest.(check int) "or skips rhs" 1
    (run_result ~args:[ 5 ] "void f(int x) { result = (x == 5 || 10 / 0 > 0); }" ~entry:"f")

let test_recursion () =
  Alcotest.(check int) "factorial" 120
    (run_result ~args:[ 5 ]
       "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } void f(int n) { result = fact(n); }"
       ~entry:"f");
  Alcotest.(check int) "fib" 55
    (run_result ~args:[ 10 ]
       "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } void f(int n) { result = fib(n); }"
       ~entry:"f")

let test_pointers_and_structs () =
  Alcotest.(check int) "swap via pointers" 1
    (run_result
       {|
void swap(int *a, int *b) { int t; t = *a; *a = *b; *b = t; }
void f() {
  int x = 1;
  int y = 2;
  swap(&x, &y);
  if (x == 2 && y == 1) result = 1;
}
|}
       ~entry:"f");
  Alcotest.(check int) "struct fields" 30
    (run_result
       {|
struct pair { int a; int b; };
void f() {
  struct pair p;
  p.a = 10;
  p.b = 20;
  result = p.a + p.b;
}
|}
       ~entry:"f");
  Alcotest.(check int) "heap list" 6
    (run_result
       {|
struct cell { int v; struct cell *next; };
void f() {
  struct cell *a = (struct cell *)malloc(sizeof(struct cell));
  struct cell *b = (struct cell *)malloc(sizeof(struct cell));
  a->v = 2; b->v = 4;
  a->next = b; b->next = NULL;
  struct cell *p = a;
  while (p != NULL) { result += p->v; p = p->next; }
}
|}
       ~entry:"f")

let test_arrays () =
  Alcotest.(check int) "array sum" 60
    (run_result
       {|
void f() {
  int a[3];
  int i;
  a[0] = 10; a[1] = 20; a[2] = 30;
  for (i = 0; i < 3; i++) result += a[i];
}
|}
       ~entry:"f");
  Alcotest.(check int) "2d array" 7
    (run_result
       {|
void f() {
  int m[2][3];
  m[1][2] = 7;
  result = m[1][2];
}
|}
       ~entry:"f");
  Alcotest.(check int) "pointer arithmetic" 20
    (run_result
       {|
void f() {
  int a[3];
  int *p;
  a[0] = 10; a[1] = 20;
  p = a;
  result = *(p + 1);
}
|}
       ~entry:"f")

let test_strings () =
  Alcotest.(check int) "string literal chars" 1
    (run_result
       {|
void f() {
  char *s = "AB";
  if (s[0] == 'A' && s[1] == 'B' && s[2] == 0) result = 1;
}
|}
       ~entry:"f")

let test_globals () =
  Alcotest.(check int) "global init and update" 8
    (run_result "int g = 3; void f() { g = g + 5; result = g; }" ~entry:"f");
  Alcotest.(check int) "global array zero-filled" 0
    (run_result "int arr[4]; void f() { result = arr[2]; }" ~entry:"f")

let test_initializer_lists () =
  Alcotest.(check int) "local array init" 60
    (run_result
       {|
void f() {
  int a[3] = { 10, 20, 30 };
  result = a[0] + a[1] + a[2];
}
|}
       ~entry:"f");
  Alcotest.(check int) "short list zero-fills" 10
    (run_result "void f() { int a[4] = { 10 }; result = a[0] + a[1] + a[2] + a[3]; }"
       ~entry:"f");
  Alcotest.(check int) "global array init" 111
    (run_result "int tab[4] = { 1, 10, 100 };\nvoid f() { result = tab[0] + tab[1] + tab[2] + tab[3]; }"
       ~entry:"f");
  Alcotest.(check int) "char array init" 1
    (run_result
       "void f() { char sep[3] = { ' ', ',', 0 }; if (sep[0] == 32 && sep[1] == 44 && sep[2] == 0) result = 1; }"
       ~entry:"f")

let test_switch_semantics () =
  let src = {|
void f(int msg) {
  switch (msg) {
  case 1:
  case 2:
    result = 100;
    break;
  case 7:
    result = 7;
    /* fallthrough */
  case 8:
    result = result + 10;
    break;
  default:
    result = -1;
  }
}
|} in
  Alcotest.(check int) "case 1" 100 (run_result ~args:[ 1 ] src ~entry:"f");
  Alcotest.(check int) "case 2 shares body" 100 (run_result ~args:[ 2 ] src ~entry:"f");
  Alcotest.(check int) "case 7 falls through" 17 (run_result ~args:[ 7 ] src ~entry:"f");
  Alcotest.(check int) "case 8 alone" 10 (run_result ~args:[ 8 ] src ~entry:"f");
  Alcotest.(check int) "default" (-1) (run_result ~args:[ 42 ] src ~entry:"f");
  (* switch without default falls out *)
  let src2 = "void f(int m) { switch (m) { case 1: result = 5; break; } }" in
  Alcotest.(check int) "no default, no match" 0 (run_result ~args:[ 9 ] src2 ~entry:"f");
  (* break binds to switch, continue passes through to the loop *)
  let src3 = {|
void f(int n) {
  int i;
  for (i = 0; i < 5; i++) {
    switch (i) {
    case 2:
      continue;
    case 3:
      break;
    default:
      result = result + 1;
    }
    result = result + 10;
  }
}
|} in
  (* i=0,1,4: default +1 then +10; i=2: continue (nothing); i=3: break out of switch then +10 *)
  Alcotest.(check int) "switch/loop interaction" 43 (run_result ~args:[ 0 ] src3 ~entry:"f")

let test_char_cast () =
  Alcotest.(check int) "cast truncates to byte" 1
    (run_result "void f() { int big = 511; result = ((char)big == 255); }" ~entry:"f")

let test_fault_null_deref () =
  expect_fault "void f() { int *p = NULL; *p = 1; }" ~entry:"f" Machine.Null_deref

let test_fault_div_zero () =
  expect_fault ~args:[ 0 ] "void f(int x) { int r = 10 / x; }" ~entry:"f" Machine.Div_by_zero

let test_fault_abort () = expect_fault "void f() { abort(); }" ~entry:"f" Machine.Abort

let test_fault_assert () =
  expect_fault ~args:[ 0 ] "void f(int x) { assert(x == 1); }" ~entry:"f" Machine.Abort;
  let outcome, _ = run ~args:[ 1 ] "void f(int x) { assert(x == 1); }" ~entry:"f" in
  Alcotest.(check bool) "assert passes" true (outcome = Machine.Halted)

let test_assume_halts () =
  let outcome, _ = run ~args:[ 0 ] "void f(int x) { assume(x == 1); abort(); }" ~entry:"f" in
  Alcotest.(check bool) "assume failure halts silently" true (outcome = Machine.Halted);
  expect_fault ~args:[ 1 ] "void f(int x) { assume(x == 1); abort(); }" ~entry:"f"
    Machine.Abort

let test_fault_uninitialized () =
  expect_fault "void f() { int x; int y = x + 1; }" ~entry:"f" Machine.Uninitialized_read;
  expect_fault "void f() { int *p = (int *)malloc(1); int v = *p; }" ~entry:"f"
    Machine.Uninitialized_read

let test_fault_use_after_free () =
  expect_fault "void f() { int *p = (int *)malloc(1); *p = 5; free(p); int v = *p; }"
    ~entry:"f" Machine.Invalid_deref

let test_fault_double_free () =
  expect_fault "void f() { int *p = (int *)malloc(1); free(p); free(p); }" ~entry:"f"
    Machine.Bad_free;
  expect_fault "void f() { int x; free(&x); }" ~entry:"f" Machine.Bad_free;
  let outcome, _ = run "void f() { free(NULL); }" ~entry:"f" in
  Alcotest.(check bool) "free(NULL) ok" true (outcome = Machine.Halted)

let test_fault_heap_overflow () =
  expect_fault "void f() { int *p = (int *)malloc(2); p[2] = 1; }" ~entry:"f"
    Machine.Invalid_deref

let test_fault_step_limit () =
  let config = { Machine.default_config with step_limit = 1000 } in
  expect_fault ~config "void f() { while (1) { } }" ~entry:"f" Machine.Step_limit

let test_fault_call_depth () =
  expect_fault "int f(int n) { return f(n + 1); } void g() { int r = f(0); }" ~entry:"g"
    Machine.Call_depth

let test_fault_missing_return () =
  expect_fault ~args:[ 0 ]
    "int f(int x) { if (x > 0) return 1; } void g(int x) { int r = f(x); }" ~entry:"g"
    Machine.Missing_return

let test_dangling_stack_pointer () =
  expect_fault
    {|
int *leak() { int local = 5; return &local; }
void f() { int *p = leak(); int v = *p; }
|}
    ~entry:"f" Machine.Invalid_deref

let test_alloca_model () =
  (* Small request succeeds; request beyond the stack limit returns
     NULL — the behaviour behind the paper's oSIP parser attack. *)
  Alcotest.(check int) "small alloca ok" 1
    (run_result
       "void f() { char *p = (char *)alloca(16); if (p != NULL) { p[0] = 'x'; result = 1; } }"
       ~entry:"f");
  let config = { Machine.default_config with stack_limit = 4096 } in
  Alcotest.(check int) "huge alloca returns NULL" 1
    (run_result ~config
       "void f() { char *p = (char *)alloca(1000000); if (p == NULL) result = 1; }"
       ~entry:"f");
  Alcotest.(check int) "negative alloca returns NULL" 1
    (run_result "void f() { char *p = (char *)alloca(-5); if (p == NULL) result = 1; }"
       ~entry:"f")

let test_malloc_edge_cases () =
  Alcotest.(check int) "malloc negative is NULL" 1
    (run_result "void f() { void *p = malloc(-1); if (p == NULL) result = 1; }" ~entry:"f");
  Alcotest.(check int) "malloc(0) non-NULL" 1
    (run_result "void f() { void *p = malloc(0); if (p != NULL) result = 1; }" ~entry:"f");
  expect_fault "void f() { int *p = (int *)malloc(0); int v = *p; }" ~entry:"f"
    Machine.Invalid_deref

let test_library_call () =
  let src = "int lib_inc(int x);\nint result = 0;\nvoid f(int x) { result = lib_inc(x); }" in
  let ast = Minic.Parser.parse_program src in
  let lib_sig =
    { Minic.Tast.sig_name = "lib_inc"; sig_ret = Minic.Ctype.Tint; sig_params = [ Minic.Ctype.Tint ] }
  in
  let tp = Minic.Typecheck.check ~library:[ lib_sig ] ast in
  let prog = Ram.Lower.lower_program tp in
  let library = [ ("lib_inc", fun _ args -> match args with [ x ] -> x + 1 | _ -> 0) ] in
  let outcome, m = Diff_engines.run ~library ~args:[ 41 ] prog ~entry:"f" in
  (match outcome with
   | Machine.Halted -> ()
   | Machine.Faulted _ -> Alcotest.fail "library call faulted");
  (match Machine.read_word m (Machine.global_addr m "result") with
   | Ok v -> Alcotest.(check int) "lib_inc(41)" 42 v
   | Error _ -> Alcotest.fail "no result")

let test_single_shot () =
  let prog = Ram.Lower.lower_source "void f() { }" in
  let m = Machine.load prog in
  ignore (Machine.run ~args:[] m ~entry:"f");
  Alcotest.(check bool) "second run rejected" true
    (try
       ignore (Machine.run ~args:[] m ~entry:"f");
       false
     with Invalid_argument _ -> true)

let test_steps_counted () =
  let prog = Ram.Lower.lower_source "void f() { int i; for (i = 0; i < 10; i++) { } }" in
  let m = Machine.load prog in
  ignore (Machine.run ~args:[] m ~entry:"f");
  Alcotest.(check bool) "steps > 20" true (Machine.steps m > 20);
  Alcotest.(check int) "11 branch evaluations" 11 (Machine.branch_count m)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "short-circuit semantics" `Quick test_short_circuit_semantics;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "pointers and structs" `Quick test_pointers_and_structs;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "initializer lists" `Quick test_initializer_lists;
    Alcotest.test_case "switch semantics" `Quick test_switch_semantics;
    Alcotest.test_case "char cast" `Quick test_char_cast;
    Alcotest.test_case "fault: NULL deref" `Quick test_fault_null_deref;
    Alcotest.test_case "fault: division by zero" `Quick test_fault_div_zero;
    Alcotest.test_case "fault: abort" `Quick test_fault_abort;
    Alcotest.test_case "fault: assert" `Quick test_fault_assert;
    Alcotest.test_case "assume halts" `Quick test_assume_halts;
    Alcotest.test_case "fault: uninitialized read" `Quick test_fault_uninitialized;
    Alcotest.test_case "fault: use after free" `Quick test_fault_use_after_free;
    Alcotest.test_case "fault: double free" `Quick test_fault_double_free;
    Alcotest.test_case "fault: heap overflow" `Quick test_fault_heap_overflow;
    Alcotest.test_case "fault: step limit" `Quick test_fault_step_limit;
    Alcotest.test_case "fault: call depth" `Quick test_fault_call_depth;
    Alcotest.test_case "fault: missing return" `Quick test_fault_missing_return;
    Alcotest.test_case "fault: dangling stack pointer" `Quick test_dangling_stack_pointer;
    Alcotest.test_case "alloca failure model" `Quick test_alloca_model;
    Alcotest.test_case "malloc edge cases" `Quick test_malloc_edge_cases;
    Alcotest.test_case "library call" `Quick test_library_call;
    Alcotest.test_case "machines are single-shot" `Quick test_single_shot;
    Alcotest.test_case "step accounting" `Quick test_steps_counted ]
