(* Solver acceleration layer: independence slicing of path constraints
   and the per-worker solve cache. The key invariant throughout: both
   optimisations are *exact* — verdicts, bug sets and coverage must be
   identical with and without them. *)

open Zarith_lite

let zi = Zint.of_int

(* ---- cache canonicalisation -------------------------------------------------- *)

let c_eq v k =
  Symbolic.Constr.make
    (Symbolic.Linexpr.add_const (zi (-k)) (Symbolic.Linexpr.var v))
    Symbolic.Constr.Eq0

let c_le v k =
  Symbolic.Constr.make
    (Symbolic.Linexpr.add_const (zi (-k)) (Symbolic.Linexpr.var v))
    Symbolic.Constr.Le0

let key cs = (Solver.Cache.canonical cs).Solver.Cache.key
let same_key a b = Solver.Cache.Key.equal (key a) (key b)

let test_canonical_key () =
  let a = c_eq 0 10 and b = c_le 1 3 in
  Alcotest.(check bool) "order and duplicates ignored" true (same_key [ a; b ] [ b; a; b; a ]);
  Alcotest.(check int) "hash agrees"
    (Solver.Cache.Key.hash (key [ a; b ]))
    (Solver.Cache.Key.hash (key [ b; a; b; a ]));
  Alcotest.(check bool) "different set, different key" false (same_key [ a; b ] [ a; c_le 1 4 ])

(* Regression: syntactically different spellings of the same constraint
   set must canonicalise to the same key — commuted term order, scaled
   coefficients, Lt-vs-Le spelling and variable renaming all used to
   produce distinct keys (and therefore spurious cache misses). *)
let test_canonical_key_normalises () =
  let lx terms k =
    List.fold_left
      (fun acc (v, c) ->
        Symbolic.Linexpr.add acc (Symbolic.Linexpr.scale (zi c) (Symbolic.Linexpr.var v)))
      (Symbolic.Linexpr.const (zi k)) terms
  in
  let mk terms k op = Symbolic.Constr.make (lx terms k) op in
  (* Commuted equations: a - b = 0 and b - a = 0. *)
  Alcotest.(check bool) "a-b=0 equals b-a=0" true
    (same_key [ mk [ (0, 1); (1, -1) ] 0 Symbolic.Constr.Eq0 ]
       [ mk [ (1, 1); (0, -1) ] 0 Symbolic.Constr.Eq0 ]);
  (* Scaled inequalities: 2a - 4 <= 0 and a - 2 <= 0. *)
  Alcotest.(check bool) "2a<=4 equals a<=2" true
    (same_key [ mk [ (0, 2) ] (-4) Symbolic.Constr.Le0 ]
       [ mk [ (0, 1) ] (-2) Symbolic.Constr.Le0 ]);
  (* Integer Lt/Le spelling: a - 3 < 0 and a - 2 <= 0. *)
  Alcotest.(check bool) "a<3 equals a<=2" true
    (same_key [ mk [ (0, 1) ] (-3) Symbolic.Constr.Lt0 ]
       [ mk [ (0, 1) ] (-2) Symbolic.Constr.Le0 ]);
  (* Variable renaming: x5 = 10 alone is the same shape as x0 = 10. *)
  Alcotest.(check bool) "x5=10 equals x0=10" true (same_key [ c_eq 5 10 ] [ c_eq 0 10 ]);
  (* ... but renaming respects sharing: {x0=1, x0<=2} is not {x0=1, x1<=2}. *)
  Alcotest.(check bool) "shared var distinguishes" false
    (same_key [ c_eq 0 1; c_le 0 2 ] [ c_eq 0 1; c_le 1 2 ]);
  (* Negated disequalities: a - b != 0 and b - a != 0. *)
  Alcotest.(check bool) "a<>b equals b<>a" true
    (same_key [ mk [ (0, 1); (1, -1) ] 0 Symbolic.Constr.Ne0 ]
       [ mk [ (1, 1); (0, -1) ] 0 Symbolic.Constr.Ne0 ])

(* Renamed hits must hand back models over the *caller's* variables,
   not the canonical ones. *)
let test_cache_renamed_model () =
  let cache = Solver.Cache.create () in
  Solver.Cache.add cache (Solver.Cache.canonical [ c_eq 0 10 ])
    (Solver.Cache.Sat [ (0, zi 10) ]);
  match Solver.Cache.find cache (Solver.Cache.canonical [ c_eq 7 10 ]) with
  | Some (Solver.Cache.Sat [ (7, z) ]) ->
    Alcotest.(check int) "model remapped to x7" 10 (Zint.to_int z)
  | Some _ -> Alcotest.fail "hit with wrong model shape"
  | None -> Alcotest.fail "renamed query missed"

let test_cache_roundtrip () =
  let cache = Solver.Cache.create () in
  let keyed = Solver.Cache.canonical [ c_eq 0 10 ] in
  Alcotest.(check bool) "miss on empty" true (Solver.Cache.find cache keyed = None);
  Solver.Cache.add cache keyed (Solver.Cache.Sat [ (0, zi 10) ]);
  (match Solver.Cache.find cache (Solver.Cache.canonical [ c_eq 0 10 ]) with
   | Some (Solver.Cache.Sat [ (0, z) ]) -> Alcotest.(check int) "model value" 10 (Zint.to_int z)
   | _ -> Alcotest.fail "expected cached Sat model");
  let ukeyed = Solver.Cache.canonical [ c_eq 0 1; c_eq 0 2 ] in
  Solver.Cache.add cache ukeyed Solver.Cache.Unsat;
  Alcotest.(check bool) "unsat cached" true
    (Solver.Cache.find cache ukeyed = Some Solver.Cache.Unsat);
  Alcotest.(check int) "two entries" 2 (Solver.Cache.length cache)

(* ---- shared cross-worker store ------------------------------------------------ *)

let test_shared_store_protocol () =
  let st = Solver.Store.create () in
  let k = Solver.Cache.canonical [ c_eq 0 10 ] in
  (match Solver.Store.acquire st ~worker:0 k with
   | Solver.Store.Claimed -> ()
   | _ -> Alcotest.fail "first acquire must claim");
  (match Solver.Store.acquire st ~worker:1 k with
   | Solver.Store.Busy 0 -> ()
   | _ -> Alcotest.fail "peer must see Busy with the claimant's id");
  (* The claimant re-acquiring its own stale claim (a retried Unknown)
     gets the slot back instead of deadlocking on itself. *)
  (match Solver.Store.acquire st ~worker:0 k with
   | Solver.Store.Claimed -> ()
   | _ -> Alcotest.fail "claimant re-acquires its own claim");
  Solver.Store.publish st ~worker:0 k (Solver.Cache.Sat [ (0, zi 10) ]);
  Alcotest.(check int) "one solved cell" 1 (Solver.Store.solved st);
  (* A renamed spelling of the same query hits, carries the publisher's
     id, and the model comes back over the caller's variables. *)
  (match Solver.Store.acquire st ~worker:1 (Solver.Cache.canonical [ c_eq 3 10 ]) with
   | Solver.Store.Hit (Solver.Cache.Sat [ (3, z) ], 0) ->
     Alcotest.(check int) "model remapped" 10 (Zint.to_int z)
   | _ -> Alcotest.fail "expected a renamed hit published by worker 0");
  (* First publisher wins: a late conflicting publish is a no-op. *)
  Solver.Store.publish st ~worker:1 k Solver.Cache.Unsat;
  (match Solver.Store.acquire st ~worker:2 k with
   | Solver.Store.Hit (Solver.Cache.Sat _, 0) -> ()
   | _ -> Alcotest.fail "first published verdict must stand");
  Alcotest.(check int) "still one cell" 1 (Solver.Store.length st)

(* ---- slicing: dependency closure --------------------------------------------- *)

let lin terms k =
  List.fold_left
    (fun acc (v, c) ->
      Symbolic.Linexpr.add acc (Symbolic.Linexpr.scale (zi c) (Symbolic.Linexpr.var v)))
    (Symbolic.Linexpr.const (zi k)) terms

let test_slice_components () =
  (* pivot over x0; prefix has one constraint chained to x0 through x1
     and one constraint over an unrelated x9. *)
  let pivot = c_eq 0 1 in
  let chain01 = Symbolic.Constr.make (lin [ (0, 1); (1, -1) ] 0) Symbolic.Constr.Le0 in
  let alone9 = c_le 9 5 in
  let kept, dropped = Dart.Solve_pc.slice ~pivot ~prefix:[ chain01; alone9 ] in
  Alcotest.(check int) "one constraint sliced away" 1 dropped;
  Alcotest.(check int) "pivot + chained kept" 2 (List.length kept);
  Alcotest.(check bool) "pivot kept first" true (Symbolic.Constr.equal (List.hd kept) pivot);
  Alcotest.(check bool) "unrelated dropped" true
    (not (List.exists (Symbolic.Constr.equal alone9) kept));
  (* Transitive closure: x0-x1, x1-x2 pulls the x2 constraint in. *)
  let chain12 = Symbolic.Constr.make (lin [ (1, 1); (2, -1) ] 0) Symbolic.Constr.Le0 in
  let kept, dropped =
    Dart.Solve_pc.slice ~pivot ~prefix:[ chain01; chain12; alone9; c_eq 2 7 ]
  in
  Alcotest.(check int) "only x9 dropped" 1 dropped;
  Alcotest.(check int) "closure kept" 4 (List.length kept)

let test_slice_preserves_im () =
  (* Flipping the deepest branch (over x1) must not disturb the
     unrelated x0, which stays at its IM value. *)
  let im = Dart.Inputs.create () in
  Dart.Inputs.set im ~id:0 5;
  Dart.Inputs.set im ~id:1 6;
  let stack =
    [| { Dart.Concolic.br_branch = true; br_done = false };
       { Dart.Concolic.br_branch = true; br_done = false } |]
  in
  let path_constraint = [| Some (c_eq 0 5); Some (c_eq 1 6) |] in
  let stats = Solver.create_stats () in
  let next =
    Dart.Solve_pc.solve ~slicing:true ~strategy:Dart.Strategy.Dfs
      ~rng:(Dart_util.Prng.create 1) ~stats ~im ~stack ~path_constraint ()
  in
  (match next with
   | Dart.Solve_pc.Next_run stack' ->
     Alcotest.(check int) "stack truncated to flip" 2 (Array.length stack');
     Alcotest.(check bool) "deepest flipped" false stack'.(1).Dart.Concolic.br_branch
   | Dart.Solve_pc.Exhausted _ -> Alcotest.fail "x1 <> 6 is satisfiable");
  Alcotest.(check (option int)) "x0 untouched" (Some 5) (Dart.Inputs.value_of im 0);
  (match Dart.Inputs.value_of im 1 with
   | Some v -> Alcotest.(check bool) "x1 re-solved away from 6" true (v <> 6)
   | None -> Alcotest.fail "x1 must be set");
  Alcotest.(check int) "prefix constraint sliced away" 1
    (Solver.constraints_sliced_away stats)

(* ---- end-to-end: ablation combos agree --------------------------------------- *)

let opts ?(depth = 1) ?(max_runs = 20_000) ~use_slicing ~use_cache () =
  Dart.Driver.Options.make ~depth ~max_runs ~use_slicing ~use_cache ()

let combos = [ (true, true); (true, false); (false, true); (false, false) ]

let run_combo ?depth ?max_runs (src, toplevel) (use_slicing, use_cache) =
  Dart.Driver.test_source
    ~options:(opts ?depth ?max_runs ~use_slicing ~use_cache ())
    ~toplevel src

let fingerprint (r : Dart.Driver.report) =
  let verdict =
    match r.Dart.Driver.verdict with
    | Dart.Driver.Bug_found _ -> "bug"
    | Dart.Driver.Complete -> "complete"
    | Dart.Driver.Budget_exhausted -> "budget"
    | Dart.Driver.Time_exhausted -> "time"
    | Dart.Driver.Interrupted -> "interrupted"
  in
  ( verdict,
    List.map Dart.Driver.bug_key r.Dart.Driver.bugs,
    List.sort compare r.Dart.Driver.coverage_sites )

let test_ablation_equivalence () =
  let nested =
    ({| void f(int a, int b) { if (a == 1) { if (b == 2) { if (a == 3) abort(); } } } |}, "f")
  in
  let step3 = ({| void step(int m) { if (m == 1) { m = 0; } } |}, "step") in
  let cases =
    [ ("2.1", Workloads.Paper_examples.section_2_1, 1);
      ("2.4", Workloads.Paper_examples.section_2_4, 1);
      ("ac", Workloads.Paper_examples.ac_controller, 2);
      ("eq", Workloads.Paper_examples.eq_filter, 1);
      ("nested", nested, 1);
      ("step3", step3, 3) ]
  in
  List.iter
    (fun (name, case, depth) ->
      let reference = fingerprint (run_combo ~depth case (false, false)) in
      List.iter
        (fun combo ->
          let got = fingerprint (run_combo ~depth case combo) in
          let sl, ca = combo in
          Alcotest.(check bool)
            (Printf.sprintf "%s: slicing=%b cache=%b matches baseline" name sl ca)
            true (got = reference))
        combos)
    cases

let test_unsat_slicing_complete () =
  (* a == 3 under prefix a == 1 is Unsat; slicing must still prove it
     (the pivot's own component keeps the a-constraints) and DFS must
     terminate Complete, with the unrelated b-constraint sliced away. *)
  let src = {| void f(int a, int b) { if (a == 1) { if (b == 2) { if (a == 3) abort(); } } } |} in
  List.iter
    (fun use_slicing ->
      let options = opts ~use_slicing ~use_cache:false () in
      let r = Dart.Driver.test_source ~options ~toplevel:"f" src in
      (match r.Dart.Driver.verdict with
       | Dart.Driver.Complete -> ()
       | _ -> Alcotest.failf "slicing=%b: expected Complete" use_slicing);
      if use_slicing then
        Alcotest.(check bool) "some constraint sliced away" true
          (Solver.constraints_sliced_away r.Dart.Driver.solver_stats > 0))
    [ true; false ]

(* ---- cache effectiveness ------------------------------------------------------ *)

let test_cache_hits_and_query_reduction () =
  (* Depth-3 driver over independent per-call inputs: sibling subtrees
     re-issue the same sliced queries, so slicing + caching must
     answer some from the cache and reduce solver queries. *)
  let case = ({| void step(int m) { if (m == 1) { m = 0; } } |}, "step") in
  let accel = run_combo ~depth:3 case (true, true) in
  let plain = run_combo ~depth:3 case (false, false) in
  let qa = Solver.queries accel.Dart.Driver.solver_stats in
  let qp = Solver.queries plain.Dart.Driver.solver_stats in
  Alcotest.(check bool) "cache hits occurred" true
    (Solver.cache_hits accel.Dart.Driver.solver_stats > 0);
  Alcotest.(check bool)
    (Printf.sprintf "fewer queries with accel (%d < %d)" qa qp)
    true (qa < qp);
  (* With the cache on, every real solve was a recorded miss. *)
  Alcotest.(check int) "queries = cache misses" qa
    (Solver.cache_misses accel.Dart.Driver.solver_stats);
  (* Both runs explored the same 8 paths. *)
  Alcotest.(check int) "same paths" plain.Dart.Driver.paths_explored
    accel.Dart.Driver.paths_explored

let test_cache_determinism () =
  (* Bit-for-bit determinism with the cache on: identical reports from
     identical runs. *)
  let run () = run_combo ~depth:2 Workloads.Paper_examples.ac_controller (true, true) in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same runs" r1.Dart.Driver.runs r2.Dart.Driver.runs;
  Alcotest.(check int) "same steps" r1.Dart.Driver.total_steps r2.Dart.Driver.total_steps;
  Alcotest.(check int) "same hits"
    (Solver.cache_hits r1.Dart.Driver.solver_stats)
    (Solver.cache_hits r2.Dart.Driver.solver_stats);
  Alcotest.(check bool) "same witness" true
    (match (r1.Dart.Driver.verdict, r2.Dart.Driver.verdict) with
     | Dart.Driver.Bug_found a, Dart.Driver.Bug_found b ->
       a.Dart.Driver.bug_inputs = b.Dart.Driver.bug_inputs
     | _ -> false)

let test_per_worker_caches () =
  (* Parallel workers carry private caches: the merged stats sum the
     per-worker counters, and jobs=1 with caching stays identical to
     the sequential driver. *)
  let src, toplevel = Workloads.Paper_examples.section_2_4 in
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel ~depth:1 ast in
  let base = Dart.Driver.Options.make ~max_runs:100 () in
  let seq = Dart.Driver.run ~options:base prog in
  let par1 = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:1 base) prog in
  (* Structural equality would compare the wall-clock metrics records;
     the printed report carries everything deterministic. *)
  Alcotest.(check string) "jobs=1 report identical"
    (Dart.Driver.report_to_string seq)
    (Dart.Driver.report_to_string par1.Dart.Parallel.merged);
  let par4 = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:4 base) prog in
  let merged_hits =
    List.fold_left
      (fun acc (w : Dart.Parallel.worker_report) ->
        acc + Solver.cache_hits w.Dart.Parallel.w_report.Dart.Driver.solver_stats)
      0 par4.Dart.Parallel.workers
  in
  Alcotest.(check int) "merged hits = sum of worker hits" merged_hits
    (Solver.cache_hits par4.Dart.Parallel.merged.Dart.Driver.solver_stats)

let suite =
  [ Alcotest.test_case "canonical key" `Quick test_canonical_key;
    Alcotest.test_case "canonical key normalisation" `Quick test_canonical_key_normalises;
    Alcotest.test_case "renamed cache hit" `Quick test_cache_renamed_model;
    Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "shared store protocol" `Quick test_shared_store_protocol;
    Alcotest.test_case "slice components" `Quick test_slice_components;
    Alcotest.test_case "slice preserves IM" `Quick test_slice_preserves_im;
    Alcotest.test_case "ablation equivalence" `Quick test_ablation_equivalence;
    Alcotest.test_case "unsat under slicing" `Quick test_unsat_slicing_complete;
    Alcotest.test_case "cache hits reduce queries" `Quick test_cache_hits_and_query_reduction;
    Alcotest.test_case "cache determinism" `Quick test_cache_determinism;
    Alcotest.test_case "per-worker caches" `Quick test_per_worker_caches ]
