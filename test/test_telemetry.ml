(* The telemetry subsystem: sink semantics (null / ring / jsonl), the
   JSONL codec, phase metrics, and the end-to-end contracts — tracing
   must never perturb the search, and trace event counts must agree
   with the report's counters. *)

module T = Dart.Telemetry

(* ---- sinks ------------------------------------------------------------------- *)

let test_null_sink () =
  Alcotest.(check bool) "null disabled" false (T.enabled T.null);
  T.emit T.null (T.Run_start { run = 1 });
  Alcotest.(check int) "null counts nothing" 0 (T.emitted T.null);
  Alcotest.(check int) "null buffers nothing" 0 (List.length (T.events T.null))

let test_ring_wraparound () =
  let r = T.ring ~capacity:4 in
  Alcotest.(check bool) "ring enabled" true (T.enabled r);
  for i = 1 to 10 do
    T.emit r (T.Run_start { run = i })
  done;
  Alcotest.(check int) "all emissions counted" 10 (T.emitted r);
  let runs =
    List.filter_map (function T.Run_start { run } -> Some run | _ -> None) (T.events r)
  in
  Alcotest.(check (list int)) "most recent capacity events, oldest first" [ 7; 8; 9; 10 ]
    runs;
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Telemetry.ring: capacity < 1") (fun () ->
      ignore (T.ring ~capacity:0))

let test_ring_dropped () =
  let r = T.ring ~capacity:4 in
  for i = 1 to 4 do
    T.emit r (T.Run_start { run = i })
  done;
  Alcotest.(check int) "full ring, nothing dropped yet" 0 (T.dropped r);
  for i = 5 to 10 do
    T.emit r (T.Run_start { run = i })
  done;
  (* Each wraparound overwrite is a lost event, counted rather than
     silently forgotten. *)
  Alcotest.(check int) "one drop per overwrite" 6 (T.dropped r);
  Alcotest.(check int) "null never drops" 0 (T.dropped T.null)

let test_replay () =
  let src = T.ring ~capacity:8 and dst = T.ring ~capacity:8 in
  T.emit src (T.Run_start { run = 1 });
  T.emit src (T.Restart { restarts = 1 });
  T.emit dst (T.Run_start { run = 99 });
  T.replay src ~into:dst;
  Alcotest.(check int) "replayed in order" 3 (List.length (T.events dst));
  match T.events dst with
  | [ T.Run_start { run = 99 }; T.Run_start { run = 1 }; T.Restart _ ] -> ()
  | _ -> Alcotest.fail "replay appended source events in order"

(* ---- JSONL codec -------------------------------------------------------------- *)

let all_variants =
  [ T.Run_start { run = 1 };
    T.Run_end { run = 1; outcome = "halted"; steps = 42; dur_ns = 123_456_789L };
    T.Branch_taken { fn = "f"; pc = 3; dir = true };
    T.Branch_taken { fn = "__coin"; pc = 0; dir = false };
    T.Solve_query
      { fn = "g \"quoted\"\\path";
        pc = 7;
        result = T.R_sat;
        dur_ns = 5L;
        cache_hit = false;
        sliced = 2 };
    T.Solve_query
      { fn = "h"; pc = 0; result = T.R_unknown; dur_ns = 0L; cache_hit = true; sliced = 0 };
    T.Input_update { id = 0; value = 12345 };
    T.Restart { restarts = 2 };
    T.Bug_found { fn = "g"; pc = 9; fault = "abort"; run = 4 };
    T.Worker_spawn { worker = 0; seed = 42 };
    T.Worker_drain { worker = 3; runs = 10 };
    T.Phase_total { phase = T.Solve; dur_ns = 99L };
    T.Cover_point { run = 6; covered = 12; elapsed_ns = 987_654L };
    T.Target_scheduled { target = "osip_free"; round = 2 };
    T.Slice_end
      { target = "osip_free"; round = 2; outcome = "budget"; runs = 200; dur_ns = 55L };
    T.Target_retired { target = "osip \"free\""; reason = "saturated" };
    T.Round_end { round = 3; active = 7; dur_ns = 1_000_000L } ]

let test_json_roundtrip () =
  List.iter
    (fun e ->
      let line = T.event_to_json e in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match T.event_of_json line with
      | Ok e' -> Alcotest.(check bool) (T.event_to_json e) true (e = e')
      | Error msg -> Alcotest.failf "%s failed to parse: %s" line msg)
    all_variants

let test_json_rejects_malformed () =
  let bad =
    [ "{oops"; "[]"; "{}"; {|{"ev":"warp_drive"}|}; {|{"ev":"run_start"}|};
      {|{"ev":"run_start","run":"one"}|}; {|{"ev":"phase","phase":"think","ns":1}|} ]
  in
  List.iter
    (fun line ->
      match T.event_of_json line with
      | Ok _ -> Alcotest.failf "accepted malformed line %s" line
      | Error _ -> ())
    bad

(* ---- phase metrics ------------------------------------------------------------- *)

let test_metrics () =
  let m = T.create_metrics () in
  T.add_phase m T.Execute 100L;
  T.add_phase m T.Solve 50L;
  T.add_phase m T.Solve 25L;
  Alcotest.(check int64) "phases accumulate" 75L m.T.solve_ns;
  Alcotest.(check int64) "total sums all phases" 175L (T.total_ns m);
  let m2 = T.create_metrics () in
  T.add_phase m2 T.Lower 1_000L;
  T.add_metrics ~into:m m2;
  Alcotest.(check int64) "add_metrics folds in" 1_175L (T.total_ns m);
  let assoc = T.metrics_to_assoc m in
  Alcotest.(check (list string)) "stable assoc keys"
    [ "execute_s"; "solve_s"; "lower_s"; "merge_s"; "total_s" ]
    (List.map fst assoc);
  let x = T.timed m T.Merge (fun () -> 17) in
  Alcotest.(check int) "timed returns the thunk's value" 17 x;
  Alcotest.(check bool) "timed attributed time" true (Int64.compare m.T.merge_ns 0L >= 0);
  let sink = T.ring ~capacity:8 in
  T.emit_phase_totals sink m;
  let phases =
    List.filter_map
      (function T.Phase_total { phase; _ } -> Some (T.phase_to_string phase) | _ -> None)
      (T.events sink)
  in
  Alcotest.(check (list string)) "one total per phase, declaration order"
    [ "execute"; "solve"; "lower"; "merge" ] phases

(* ---- tracing must not perturb the search ---------------------------------------- *)

let test_tracing_off_and_on_agree () =
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  let run telemetry =
    let options = Dart.Driver.Options.make ~depth:2 ~telemetry () in
    Dart.Driver.test_source ~options ~toplevel src
  in
  let off = run T.default_config in
  let ring = T.ring ~capacity:(1 lsl 16) in
  let on = run (T.with_sink ring) in
  Alcotest.(check int) "null sink stayed empty" 0 (T.emitted T.null);
  Alcotest.(check string) "identical report with tracing on"
    (Dart.Driver.report_to_string off)
    (Dart.Driver.report_to_string on);
  Alcotest.(check bool) "enabled sink saw events" true (T.emitted ring > 0)

(* ---- golden JSONL trace ---------------------------------------------------------- *)

let read_trace path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      (try
         while true do
           let line = input_line ic in
           match T.event_of_json line with
           | Ok e -> events := e :: !events
           | Error msg -> Alcotest.failf "malformed trace line %s: %s" line msg
         done
       with End_of_file -> ());
      List.rev !events)

let count p events = List.length (List.filter p events)

let test_jsonl_trace_counts () =
  let src, toplevel = Workloads.Paper_examples.ac_controller in
  let path = Filename.temp_file "dart_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let r =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let telemetry = T.with_sink (T.jsonl oc) in
        let options = Dart.Driver.Options.make ~depth:2 ~telemetry () in
        Dart.Driver.test_source ~options ~toplevel src)
  in
  let events = read_trace path in
  let is_run_start = function T.Run_start _ -> true | _ -> false in
  let is_run_end = function T.Run_end _ -> true | _ -> false in
  Alcotest.(check int) "run_start per run" r.Dart.Driver.runs (count is_run_start events);
  Alcotest.(check int) "run_end per run" r.Dart.Driver.runs (count is_run_end events);
  Alcotest.(check int) "non-hit solve events = solver queries"
    (Solver.queries r.Dart.Driver.solver_stats)
    (count (function T.Solve_query { cache_hit; _ } -> not cache_hit | _ -> false) events);
  Alcotest.(check int) "all solve events = queries + cache hits"
    (Solver.queries r.Dart.Driver.solver_stats
    + Solver.cache_hits r.Dart.Driver.solver_stats)
    (count (function T.Solve_query _ -> true | _ -> false) events);
  Alcotest.(check int) "restart events" r.Dart.Driver.restarts
    (count (function T.Restart _ -> true | _ -> false) events);
  Alcotest.(check bool) "bug event present" true
    (count (function T.Bug_found _ -> true | _ -> false) events >= 1);
  Alcotest.(check bool) "branch events present" true
    (count (function T.Branch_taken _ -> true | _ -> false) events > 0);
  Alcotest.(check int) "one phase total per phase" 4
    (count (function T.Phase_total _ -> true | _ -> false) events);
  (* The summary agrees with the report. *)
  let s = T.summarize events in
  Alcotest.(check int) "summary runs" r.Dart.Driver.runs s.T.runs;
  Alcotest.(check int) "summary real queries"
    (Solver.queries r.Dart.Driver.solver_stats)
    (s.T.solves - s.T.solve_hits);
  Alcotest.(check int) "summary bugs" 1 s.T.bugs;
  (* Per-site aggregation attributes every query. *)
  Alcotest.(check int) "site aggregation covers all queries" s.T.solves
    (List.fold_left (fun acc (_, a) -> acc + a.T.s_count) 0 s.T.sites);
  (* The run's own metrics cover execute + solve + lower. *)
  Alcotest.(check bool) "metrics collected" true
    (Int64.compare (T.total_ns r.Dart.Driver.metrics) 0L > 0);
  (* One cover point per run, monotone, ending at the report's
     coverage count; the trace-side distinct-direction count agrees
     with the report (the user/driver branch split at work). *)
  Alcotest.(check int) "cover point per run" r.Dart.Driver.runs (List.length s.T.timeline);
  let rec monotone prev = function
    | [] -> true
    | (p : T.cover_point) :: rest -> p.T.cp_covered >= prev && monotone p.T.cp_covered rest
  in
  Alcotest.(check bool) "timeline is monotone" true (monotone 0 s.T.timeline);
  (match List.rev s.T.timeline with
   | last :: _ ->
     Alcotest.(check int) "timeline ends at report coverage"
       r.Dart.Driver.branches_covered last.T.cp_covered
   | [] -> Alcotest.fail "no cover points in trace");
  Alcotest.(check int) "distinct trace dirs = report coverage"
    r.Dart.Driver.branches_covered (T.distinct_branch_dirs s)

(* ---- parallel trace merging ------------------------------------------------------ *)

let test_parallel_trace_merge () =
  let src, toplevel = Workloads.Paper_examples.section_2_4 in
  let prog = Dart.Driver.prepare ~toplevel ~depth:1 (Minic.Parser.parse_program src) in
  let ring = T.ring ~capacity:(1 lsl 16) in
  let base = Dart.Driver.Options.make ~max_runs:300 ~telemetry:(T.with_sink ring) () in
  let r = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:3 base) prog in
  let events = T.events ring in
  let spawns =
    List.filter_map (function T.Worker_spawn { worker; _ } -> Some worker | _ -> None)
      events
  in
  let drains =
    List.filter_map
      (function T.Worker_drain { worker; runs } -> Some (worker, runs) | _ -> None)
      events
  in
  Alcotest.(check (list int)) "spawns in worker order" [ 0; 1; 2 ] spawns;
  Alcotest.(check (list int)) "drains in worker order" [ 0; 1; 2 ] (List.map fst drains);
  List.iter
    (fun (w : Dart.Parallel.worker_report) ->
      Alcotest.(check int)
        (Printf.sprintf "drain runs of worker %d" w.Dart.Parallel.w_id)
        w.Dart.Parallel.w_report.Dart.Driver.runs
        (List.assoc w.Dart.Parallel.w_id drains))
    r.Dart.Parallel.workers;
  Alcotest.(check int) "merged runs = run_start events"
    r.Dart.Parallel.merged.Dart.Driver.runs
    (count (function T.Run_start _ -> true | _ -> false) events);
  Alcotest.(check int) "merged queries = non-hit solve events"
    (Solver.queries r.Dart.Parallel.merged.Dart.Driver.solver_stats)
    (count (function T.Solve_query { cache_hit; _ } -> not cache_hit | _ -> false) events);
  (* The join emits the merge phase total after the worker replays. *)
  (match List.rev events with
   | T.Phase_total { phase = T.Merge; _ } :: _ -> ()
   | _ -> Alcotest.fail "trace must end with the merge phase total");
  (* jobs=1 hands the sink through without worker framing. *)
  let ring1 = T.ring ~capacity:(1 lsl 16) in
  let base1 = Dart.Driver.Options.make ~max_runs:300 ~telemetry:(T.with_sink ring1) () in
  let r1 = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:1 base1) prog in
  Alcotest.(check int) "jobs=1: no worker events" 0
    (count
       (function T.Worker_spawn _ | T.Worker_drain _ -> true | _ -> false)
       (T.events ring1));
  Alcotest.(check int) "jobs=1: run_start per run" r1.Dart.Parallel.merged.Dart.Driver.runs
    (count (function T.Run_start _ -> true | _ -> false) (T.events ring1))

(* ---- latency histograms ----------------------------------------------------------- *)

let test_hist_buckets () =
  let h = T.Hist.create () in
  Alcotest.(check int) "empty count" 0 (T.Hist.count h);
  Alcotest.(check int64) "empty p99" 0L (T.Hist.p99 h);
  List.iter (T.Hist.add h) [ 0L; 1L; 5L; 1024L; 1500L; 1_000_000L ];
  Alcotest.(check int) "count" 6 (T.Hist.count h);
  Alcotest.(check int64) "sum" 1_002_530L (T.Hist.sum_ns h);
  Alcotest.(check int64) "max" 1_000_000L (T.Hist.max_ns h);
  Alcotest.(check int64) "mean" 167_088L (T.Hist.mean_ns h);
  (* p50 lands in the [4,8) bucket: its upper bound, 7ns. *)
  Alcotest.(check int64) "p50 is a bucket upper bound" 7L (T.Hist.p50 h);
  (* p99 would report the [2^19,2^20) bound but clamps to the max. *)
  Alcotest.(check int64) "p99 clamps to observed max" 1_000_000L (T.Hist.p99 h);
  Alcotest.(check (list (triple int64 int64 int)))
    "non-empty buckets ascending"
    [ (0L, 2L, 2); (4L, 8L, 1); (1024L, 2048L, 2); (524_288L, 1_048_576L, 1) ]
    (T.Hist.buckets h);
  (* Negative durations (clock skew) clamp to zero instead of escaping
     the bucket range. *)
  T.Hist.add h (-5L);
  Alcotest.(check int) "negative sample clamps into bucket 0" 3
    (match T.Hist.buckets h with (0L, 2L, n) :: _ -> n | _ -> 0)

(* The property Parallel/Campaign joins rely on: bucketwise merge is
   commutative and associative, so any partition of the same samples —
   one worker or four, merged in any order — yields identical buckets
   and percentiles. *)
let test_hist_merge_determinism () =
  let samples =
    (* Fixed synthetic workload, deliberately lumpy. *)
    List.init 100 (fun i -> Int64.of_int ((i * 7919 mod 977) * (1 + (i mod 13))))
  in
  let whole = T.Hist.create () in
  List.iter (T.Hist.add whole) samples;
  let parts = Array.init 4 (fun _ -> T.Hist.create ()) in
  List.iteri (fun i ns -> T.Hist.add parts.(i mod 4) ns) samples;
  let merged = T.Hist.create () in
  (* Merge in a scrambled order on purpose. *)
  List.iter (fun i -> T.Hist.merge ~into:merged parts.(i)) [ 2; 0; 3; 1 ];
  Alcotest.(check int) "count" (T.Hist.count whole) (T.Hist.count merged);
  Alcotest.(check int64) "sum" (T.Hist.sum_ns whole) (T.Hist.sum_ns merged);
  Alcotest.(check int64) "max" (T.Hist.max_ns whole) (T.Hist.max_ns merged);
  Alcotest.(check (list (triple int64 int64 int)))
    "buckets" (T.Hist.buckets whole) (T.Hist.buckets merged);
  List.iter
    (fun p ->
      Alcotest.(check int64)
        (Printf.sprintf "p%g" p)
        (T.Hist.percentile whole p) (T.Hist.percentile merged p))
    [ 50.0; 90.0; 99.0; 100.0 ]

let suite =
  [ Alcotest.test_case "null sink" `Quick test_null_sink;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring dropped counter" `Quick test_ring_dropped;
    Alcotest.test_case "hist buckets" `Quick test_hist_buckets;
    Alcotest.test_case "hist merge determinism" `Quick test_hist_merge_determinism;
    Alcotest.test_case "replay" `Quick test_replay;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick test_json_rejects_malformed;
    Alcotest.test_case "phase metrics" `Quick test_metrics;
    Alcotest.test_case "tracing does not perturb search" `Quick test_tracing_off_and_on_agree;
    Alcotest.test_case "jsonl trace counts" `Quick test_jsonl_trace_counts;
    Alcotest.test_case "parallel trace merge" `Quick test_parallel_trace_merge ]
