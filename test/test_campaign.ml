(* Campaign mode and the Target/Session/Engine API underneath it:
   discovery (harness helpers and non-scalar signatures excluded),
   per-target determinism across jobs and priority policies, checkpoint
   codec round-trips, resume equivalence, the session's preparation
   cache, and Engine's byte-level agreement with the plumbing it
   replaced. Small generated libraries keep every test deterministic
   and fast. *)

module Campaign = Dart.Campaign
module Engine = Dart.Engine
module Session = Dart.Session
module Target = Dart.Target
module O = Dart.Driver.Options

(* A tiny deterministic "library": one guarded getter (no bug to find),
   one unguarded getter (NULL deref), one gated bug the directed search
   has to solve for, and a prototype (not a target). MiniC's typechecker
   rejects non-scalar parameters outright, so a runnable library never
   contains one — the skip path is exercised on a parse-only AST below. *)
let lib_src =
  "struct msg { int status; int len; };\n\
   int get_status(struct msg *m) {\n\
  \  if (m == NULL) { return -1; }\n\
  \  return m->status;\n\
   }\n\
   int get_len(struct msg *m) { return m->len; }\n\
   int gated(int x, int y) {\n\
  \  if (x == 77) { if (y == 12) { abort(); } }\n\
  \  return x + y;\n\
   }\n\
   int proto(int x);\n"

let opts ?(seed = 7) ?(max_runs = 400) ?(per_function_runs = 100) ?retire_after () =
  O.make ~seed ~max_runs ~per_function_runs ?retire_after ()

let run_campaign ?(jobs = 1) ?options ?checkpoint ?resume src =
  match Campaign.run ~jobs ?options ?checkpoint ?resume src with
  | Ok r -> r
  | Error msg -> Alcotest.failf "campaign failed: %s" msg

(* ---- discovery ------------------------------------------------------------- *)

let test_discover () =
  (* Parse-only: struct-by-value would not typecheck, but discovery must
     still classify it with a readable reason. *)
  let src = lib_src ^ "int by_value(struct msg m) { return m.status; }\n" in
  let ast = Minic.Parser.parse_program src in
  let targets, skipped = Campaign.discover ast in
  Alcotest.(check (list string))
    "declaration order, scalar-parameter functions only"
    [ "get_status"; "get_len"; "gated" ] targets;
  (match skipped with
   | [ (name, reason) ] ->
     Alcotest.(check string) "skipped function" "by_value" name;
     Alcotest.(check bool) "reason names the type" true
       (Str_contains.contains reason "struct msg")
   | _ -> Alcotest.fail "expected exactly one skipped function")

let test_discover_excludes_harness () =
  (* A source that embeds driver-style helpers: the is_harness_site
     predicate must keep them out of the target list. *)
  let src =
    "int __dart_arg_0(int x) { return x; }\n\
     void __dart_main(int x) { __dart_arg_0(x); }\n\
     int real(int x) { return x; }\n"
  in
  let targets, skipped = Campaign.discover (Minic.Parser.parse_program src) in
  Alcotest.(check (list string)) "only the real function" [ "real" ] targets;
  Alcotest.(check int) "harness helpers are invisible, not skipped" 0
    (List.length skipped)

let test_zero_targets () =
  match Campaign.run "int proto(int x);\n" with
  | Error msg ->
    Alcotest.(check bool) "error names the cause" true
      (Str_contains.contains msg "no testable targets")
  | Ok _ -> Alcotest.fail "expected zero-target campaign to error"

(* ---- frontier signal ------------------------------------------------------- *)

let test_frontier_count () =
  Alcotest.(check int) "empty" 0 (Campaign.frontier_count []);
  Alcotest.(check int) "one direction = frontier" 1
    (Campaign.frontier_count [ ("f", 0, true) ]);
  Alcotest.(check int) "both directions = full" 0
    (Campaign.frontier_count [ ("f", 0, true); ("f", 0, false) ]);
  Alcotest.(check int) "duplicates don't double-count" 1
    (Campaign.frontier_count [ ("f", 0, true); ("f", 0, true); ("g", 1, true); ("g", 1, false) ])

(* ---- campaign results ------------------------------------------------------ *)

let find_result r name =
  match List.find_opt (fun tr -> tr.Campaign.tr_name = name) r.Campaign.cam_results with
  | Some tr -> tr
  | None -> Alcotest.failf "no result for %s" name

let test_campaign_outcomes () =
  let r = run_campaign ~options:(opts ()) lib_src in
  Alcotest.(check bool) "finished" true (r.Campaign.cam_status = Campaign.Finished);
  Alcotest.(check int) "three targets tested" 3 (List.length r.Campaign.cam_results);
  Alcotest.(check bool) "unguarded getter crashed" true
    ((find_result r "get_len").Campaign.tr_retired = Campaign.Bug);
  Alcotest.(check bool) "gated bug needs the directed search and is found" true
    ((find_result r "gated").Campaign.tr_retired = Campaign.Bug);
  (* get_status is bugless: it either proves complete or saturates. *)
  Alcotest.(check bool) "guarded getter retires clean" true
    (match (find_result r "get_status").Campaign.tr_retired with
     | Campaign.Complete | Campaign.Saturated | Campaign.Budget_capped -> true
     | Campaign.Bug | Campaign.Quarantined _ -> false);
  Alcotest.(check int) "two distinct crashes" 2 (List.length r.Campaign.cam_crashes)

let strip_resumed r = { r with Campaign.cam_resumed = 0 }

(* The "phases" line carries wall clock (the documented exception to
   to_json's determinism): byte-level comparisons drop it, exactly as
   CI's diffs use grep -v '"phases"'. *)
let json_sans_phases r =
  Campaign.to_json r
  |> String.split_on_char '\n'
  |> List.filter (fun l -> not (Str_contains.contains l "\"phases\""))
  |> String.concat "\n"

let test_jobs_determinism () =
  let r1 = run_campaign ~jobs:1 ~options:(opts ()) lib_src in
  let r4 = run_campaign ~jobs:4 ~options:(opts ()) lib_src in
  Alcotest.(check string) "aggregate JSON identical at jobs 1 and 4"
    (json_sans_phases r1) (json_sans_phases r4);
  Alcotest.(check string) "text report identical too"
    (Campaign.report_to_string r1) (Campaign.report_to_string r4)

let test_priority_is_result_neutral () =
  let base = run_campaign ~options:(opts ()) lib_src in
  let opts_order =
    O.make ~seed:7 ~max_runs:400 ~per_function_runs:100 ~priority:O.Declaration_order ()
  in
  let order = run_campaign ~options:opts_order lib_src in
  Alcotest.(check string) "frontier vs declaration order: same aggregate"
    (json_sans_phases base) (json_sans_phases order)

let test_slicing_is_result_neutral_for_crashes () =
  (* Different slice sizes change restart boundaries (and so coverage
     trajectories), but every reachable crash must still be found. *)
  let fat = run_campaign ~options:(opts ~per_function_runs:400 ()) lib_src in
  let thin = run_campaign ~options:(opts ~per_function_runs:50 ()) lib_src in
  let keys r =
    List.map (fun (_, b) -> Dart.Driver.bug_key b) r.Campaign.cam_crashes
  in
  Alcotest.(check int) "same crash count" (List.length (keys fat))
    (List.length (keys thin));
  Alcotest.(check bool) "same crash keys" true (keys fat = keys thin)

(* ---- checkpoint codec and resume ------------------------------------------- *)

let test_codec_roundtrip () =
  let options = opts () in
  let r = run_campaign ~options lib_src in
  let text = Campaign.to_string ~options ~library:lib_src r in
  match Campaign.of_string text with
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg
  | Ok (meta, results) ->
    Alcotest.(check string) "meta line survives"
      (Campaign.meta_line ~options ~library:lib_src) meta;
    Alcotest.(check int) "every finished target survives"
      (List.length r.Campaign.cam_results) (List.length results);
    let again = { r with Campaign.cam_results = results } in
    Alcotest.(check string) "results identical after round-trip"
      (Campaign.to_string ~options ~library:lib_src r)
      (Campaign.to_string ~options ~library:lib_src again)

let test_codec_rejects_single_shot () =
  match Campaign.of_string "dart-checkpoint v2\nend\n" with
  | Ok _ -> Alcotest.fail "single-shot checkpoint accepted"
  | Error msg ->
    Alcotest.(check bool) "points at plain --resume" true
      (Str_contains.contains msg "dartc --resume")

let test_checkpoint_meta_guard () =
  let options = opts () in
  let path = Filename.temp_file "dart_campaign" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = run_campaign ~options ~checkpoint:path lib_src in
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
      (match Campaign.load ~path ~options ~library:lib_src () with
       | Error msg -> Alcotest.failf "clean reload failed: %s" msg
       | Ok results ->
         Alcotest.(check int) "all finished targets recorded"
           (List.length r.Campaign.cam_results) (List.length results));
      match Campaign.load ~path ~options:(opts ~seed:8 ()) ~library:lib_src () with
      | Ok _ -> Alcotest.fail "seed mismatch accepted"
      | Error msg ->
        Alcotest.(check bool) "mismatch is explained" true
          (Str_contains.contains msg "different campaign configuration"))

let test_resume_equivalence () =
  let options = opts () in
  let uninterrupted = run_campaign ~options lib_src in
  let path = Filename.temp_file "dart_campaign" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* Simulate an interruption after one finished target: keep only
         the first target record of the full checkpoint. *)
      let full = Campaign.to_string ~options ~library:lib_src uninterrupted in
      let truncated =
        match Campaign.of_string full with
        | Error msg -> Alcotest.failf "re-parse failed: %s" msg
        | Ok (_, results) ->
          { uninterrupted with
            Campaign.cam_results = [ List.hd results ];
            cam_crashes = [] }
      in
      Campaign.save ~path ~options ~library:lib_src truncated;
      let resumed = run_campaign ~options ~resume:path lib_src in
      Alcotest.(check int) "one target restored" 1 resumed.Campaign.cam_resumed;
      Alcotest.(check string) "resumed aggregate equals the uninterrupted one"
        (json_sans_phases (strip_resumed uninterrupted))
        (json_sans_phases (strip_resumed resumed)))

let test_aggregate_sites () =
  let r = run_campaign ~options:(opts ()) lib_src in
  let sites = Campaign.aggregate_sites r in
  Alcotest.(check bool) "non-empty" true (sites <> []);
  Alcotest.(check bool) "sorted and distinct" true
    (List.sort_uniq compare sites = sites);
  Alcotest.(check bool) "no harness sites" true
    (List.for_all (fun (fn, _, _) -> not (Dart.Driver_gen.is_harness_site fn)) sites)

(* ---- Target/Session/Engine ------------------------------------------------- *)

let test_target_keys () =
  let a = Target.of_text ~toplevel:"f" "int f(int x) { return x; }" in
  let b = Target.of_text ~toplevel:"g" "int f(int x) { return x; }" in
  let c = Target.of_text ~toplevel:"f" "int f(int y) { return y; }" in
  Alcotest.(check string) "same source, same key" a.Target.tg_key b.Target.tg_key;
  Alcotest.(check bool) "different source, different key" true
    (a.Target.tg_key <> c.Target.tg_key)

let test_session_prepare_cache () =
  let session = Session.create () in
  let t1 = Target.of_text ~toplevel:"get_status" lib_src in
  let t2 = Target.of_text ~toplevel:"get_len" lib_src in
  let p1 = Session.prepare session t1 in
  let p1' = Session.prepare session t1 in
  let _p2 = Session.prepare session t2 in
  Alcotest.(check bool) "hit returns the same program" true (p1 == p1');
  Alcotest.(check int) "two distinct preparations" 2 (Session.prepared session);
  Alcotest.(check int) "one cache hit" 1 (Session.prepare_hits session)

let test_session_rejects_negative_jobs () =
  Alcotest.check_raises "jobs < 0"
    (Invalid_argument "Session.create: jobs must be >= 0") (fun () ->
      ignore (Session.create ~jobs:(-1) ()))

let test_engine_matches_driver_run () =
  let src = "void f(int x, int y) { if (x == 3) { if (y == 9) { abort(); } } }" in
  let options = O.make ~seed:5 ~max_runs:200 () in
  let direct =
    Dart.Driver.run ~options
      (Dart.Driver.prepare ~toplevel:"f" ~depth:1 (Minic.Parser.parse_program src))
  in
  let session = Session.create ~options () in
  match Engine.run session (Target.of_text ~toplevel:"f" src) with
  | Engine.Directed_report r ->
    Alcotest.(check string) "identical report text"
      (Dart.Driver.report_to_string direct)
      (Dart.Driver.report_to_string r);
    Alcotest.(check int) "exit code 1" 1 (Engine.exit_code (Engine.Directed_report r))
  | _ -> Alcotest.fail "expected a directed report"

let test_engine_parallel_and_random () =
  let src = "void f(int x) { if (x == 41) { abort(); } }" in
  let options = O.make ~seed:5 ~max_runs:200 () in
  let session = Session.create ~jobs:2 ~options () in
  let target = Target.of_text ~toplevel:"f" src in
  (match Engine.run session target with
   | Engine.Parallel_report r ->
     Alcotest.(check int) "two workers" 2 r.Dart.Parallel.jobs
   | _ -> Alcotest.fail "expected a parallel report");
  let seq = Session.create ~options () in
  match Engine.run ~mode:`Random seq target with
  | Engine.Random_report r ->
    Alcotest.(check bool) "random search ran" true (r.Dart.Random_search.runs > 0)
  | _ -> Alcotest.fail "expected a random report"

let test_engine_rejects_checkpoint_misuse () =
  let target = Target.of_text ~toplevel:"f" "int f(int x) { return x; }" in
  let parallel = Session.create ~jobs:2 () in
  Alcotest.check_raises "checkpointing needs jobs = 1"
    (Invalid_argument "Engine.run: checkpoint/resume require a sequential session (jobs = 1)")
    (fun () -> ignore (Engine.run ~on_checkpoint:(fun _ -> ()) parallel target));
  let seq = Session.create () in
  Alcotest.check_raises "checkpointing is directed-only"
    (Invalid_argument "Engine.run: checkpoint/resume describe a directed search")
    (fun () -> ignore (Engine.run ~mode:`Random ~on_checkpoint:(fun _ -> ()) seq target))

let test_effective_options () =
  let session = Session.create ~options:(O.make ~max_runs:500 ()) () in
  let plain = Target.of_text ~toplevel:"f" "int f(int x) { return x; }" in
  let overridden =
    Target.make ~max_runs:7 ~time_budget_ns:123L ~toplevel:"f"
      (Target.Text { file = None; text = "int f(int x) { return x; }" })
  in
  Alcotest.(check int) "base budget" 500
    (Engine.effective_options session plain).O.budget.O.max_runs;
  let eff = Engine.effective_options session overridden in
  Alcotest.(check int) "target overrides max_runs" 7 eff.O.budget.O.max_runs;
  Alcotest.(check bool) "target overrides time budget" true
    (eff.O.budget.O.time_budget_ns = Some 123L)

let test_osip_campaign_smoke () =
  (* The checked-in example's generator, at a smaller n: the campaign
     must find every vulnerable-by-construction function and nothing
     else. *)
  let source, funcs = Workloads.Osip_sim.generate ~seed:3 ~n:12 in
  let r =
    run_campaign ~jobs:2 ~options:(opts ~max_runs:600 ~per_function_runs:150 ()) source
  in
  let vulnerable =
    List.filter (fun f -> f.Workloads.Osip_sim.gf_vulnerable) funcs
    |> List.map (fun f -> f.Workloads.Osip_sim.gf_name)
  in
  let bugged =
    List.filter (fun tr -> tr.Campaign.tr_bugs <> []) r.Campaign.cam_results
    |> List.map (fun tr -> tr.Campaign.tr_name)
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "%s crashes" name) true
        (List.mem name bugged))
    vulnerable;
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "%s is a true positive" name) true
        (List.mem name vulnerable || not (List.mem name bugged)))
    bugged

(* ---- observability --------------------------------------------------------- *)

module T = Dart.Telemetry

(* Strip the wall-clock content out of an event so traces can be
   compared structurally: durations vary run to run, and cache_hit /
   sliced can shift with cross-worker store interleavings, but the
   event sequence itself is scheduled deterministically. *)
let canon = function
  | T.Run_end e -> T.Run_end { e with dur_ns = 0L }
  | T.Solve_query e -> T.Solve_query { e with dur_ns = 0L; cache_hit = false; sliced = 0 }
  | T.Slice_end e -> T.Slice_end { e with dur_ns = 0L }
  | T.Round_end e -> T.Round_end { e with dur_ns = 0L }
  | T.Phase_total e -> T.Phase_total { e with dur_ns = 0L }
  | T.Cover_point e -> T.Cover_point { e with elapsed_ns = 0L }
  | e -> e

let trace_of_campaign ~jobs src =
  let ring = T.ring ~capacity:(1 lsl 18) in
  let options =
    O.make ~seed:7 ~max_runs:400 ~per_function_runs:100 ~telemetry:(T.with_sink ring) ()
  in
  let r = run_campaign ~jobs ~options src in
  (r, T.events ring)

let test_trace_structure_jobs_invariant () =
  let r1, ev1 = trace_of_campaign ~jobs:1 lib_src in
  let r2, ev2 = trace_of_campaign ~jobs:2 lib_src in
  Alcotest.(check string) "reports agree"
    (Campaign.report_to_string r1) (Campaign.report_to_string r2);
  Alcotest.(check int) "same event count" (List.length ev1) (List.length ev2);
  Alcotest.(check bool) "traces identical modulo durations" true
    (List.map canon ev1 = List.map canon ev2);
  (* Framing: each of the three targets is scheduled, sliced and
     retired exactly once, in declaration order within the (1-based)
     first round. *)
  let scheduled =
    List.filter_map
      (function T.Target_scheduled { target; round = 1 } -> Some target | _ -> None)
      ev1
  in
  Alcotest.(check (list string)) "round 1 schedules all targets in order"
    [ "get_status"; "get_len"; "gated" ] scheduled;
  let retired =
    List.filter_map (function T.Target_retired { target; _ } -> Some target | _ -> None) ev1
  in
  Alcotest.(check int) "every target retires once" 3 (List.length retired);
  List.iter
    (fun t -> Alcotest.(check bool) (t ^ " retired") true (List.mem t retired))
    [ "get_status"; "get_len"; "gated" ];
  (* Slice_end run counts are per-slice deltas: summed per target they
     equal the report's per-target totals. *)
  List.iter
    (fun (tr : Campaign.target_result) ->
      let slice_runs =
        List.fold_left
          (fun acc ev ->
            match ev with
            | T.Slice_end { target; runs; _ } when target = tr.Campaign.tr_name ->
              acc + runs
            | _ -> acc)
          0 ev1
      in
      Alcotest.(check int)
        (Printf.sprintf "slice runs of %s sum to the report" tr.Campaign.tr_name)
        tr.Campaign.tr_runs slice_runs)
    r1.Campaign.cam_results;
  (* The trace closes on the campaign-wide phase totals. *)
  match List.rev ev1 with
  | T.Phase_total _ :: _ -> ()
  | _ -> Alcotest.fail "trace must end with phase totals"

let test_json_phases_line () =
  let r, _ = trace_of_campaign ~jobs:1 lib_src in
  let json = Campaign.to_json r in
  let phases_lines =
    List.filter
      (fun l -> Str_contains.contains l "\"phases\"")
      (String.split_on_char '\n' json)
  in
  (match phases_lines with
   | [ line ] ->
     (* One line, so determinism diffs can drop it with a single
        grep -v, and it carries every phase and percentile key. *)
     List.iter
       (fun key ->
         Alcotest.(check bool) ("phases line has " ^ key) true
           (Str_contains.contains line ("\"" ^ key ^ "\":")))
       [ "execute_ns"; "solve_ns"; "lower_ns"; "merge_ns"; "total_ns";
         "solve_p50_ns"; "solve_p99_ns"; "run_p50_ns"; "run_p99_ns" ]
   | ls -> Alcotest.failf "expected exactly one phases line, got %d" (List.length ls));
  (* The latency histograms fed that line: every slice contributed. *)
  Alcotest.(check bool) "run samples accumulated" true
    (T.Hist.count r.Campaign.cam_metrics.T.run_hist > 0);
  Alcotest.(check bool) "solve samples accumulated" true
    (T.Hist.count r.Campaign.cam_metrics.T.solve_hist > 0)

let test_campaign_status_file () =
  let path = Filename.temp_file "dart_campaign_status" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let options =
        O.make ~seed:7 ~max_runs:400 ~per_function_runs:100
          ~telemetry:{ T.default_config with T.status_path = Some path }
          ()
      in
      let r = run_campaign ~jobs:2 ~options lib_src in
      match Dart.Status.read ~path with
      | Error msg -> Alcotest.failf "status unreadable after campaign: %s" msg
      | Ok st ->
        Alcotest.(check bool) "campaign mode" true (st.Dart.Status.st_mode = Dart.Status.Campaign);
        Alcotest.(check int) "all targets done" 3 st.Dart.Status.st_done;
        Alcotest.(check int) "none active at exit" 0 st.Dart.Status.st_active;
        Alcotest.(check int) "none remaining" 0 st.Dart.Status.st_remaining;
        Alcotest.(check int) "bugs = deduped crashes"
          (List.length r.Campaign.cam_crashes)
          st.Dart.Status.st_bugs;
        Alcotest.(check int) "runs = summed target runs"
          (List.fold_left
             (fun acc (tr : Campaign.target_result) -> acc + tr.Campaign.tr_runs)
             0 r.Campaign.cam_results)
          st.Dart.Status.st_runs)

(* ---- fault tolerance -------------------------------------------------------- *)

module Faultsim = Dart_util.Faultsim

(* Three keyed one-shot crashes at target index 0 (the campaign probes
   Worker_crash once per slice, keyed by declaration index): with
   retry_limit 3 the third consecutive fault quarantines get_status, and
   the injections never touch the other targets. *)
let test_quarantine () =
  let options =
    O.make ~seed:7 ~max_runs:400 ~per_function_runs:100 ~retry_limit:3
      ~faultsim:
        (Faultsim.make
           [ (Faultsim.Worker_crash, Some 0, 1);
             (Faultsim.Worker_crash, Some 0, 2);
             (Faultsim.Worker_crash, Some 0, 3) ])
      ()
  in
  let r = run_campaign ~options lib_src in
  Alcotest.(check bool) "campaign finished" true (r.Campaign.cam_status = Campaign.Finished);
  let q = find_result r "get_status" in
  (match q.Campaign.tr_retired with
   | Campaign.Quarantined reason ->
     Alcotest.(check bool) "reason names the injected fault" true
       (Str_contains.contains reason "worker_crash")
   | _ -> Alcotest.fail "expected get_status to be quarantined");
  Alcotest.(check int) "exactly retry_limit slices were burned" 3 q.Campaign.tr_slices;
  Alcotest.(check int) "no run survived a crashed slice" 0 q.Campaign.tr_runs;
  (* One bad target never starves the rest: the others retire exactly as
     in a fault-free campaign. *)
  Alcotest.(check bool) "get_len still found its bug" true
    ((find_result r "get_len").Campaign.tr_retired = Campaign.Bug);
  Alcotest.(check bool) "gated still found its bug" true
    ((find_result r "gated").Campaign.tr_retired = Campaign.Bug);
  Alcotest.(check bool) "no target lost or double-counted" true
    (Campaign.no_lost_targets r);
  let text = Campaign.report_to_string r in
  Alcotest.(check bool) "text report counts the quarantine" true
    (Str_contains.contains text "1 quarantined");
  Alcotest.(check bool) "and names the target with its reason" true
    (Str_contains.contains text "get_status: ");
  let json = Campaign.to_json r in
  Alcotest.(check bool) "json counts the quarantine" true
    (Str_contains.contains json "\"quarantined\": 1");
  Alcotest.(check bool) "json carries the reason" true
    (Str_contains.contains json "\"reason\"")

(* A transient fault (fewer consecutive crashes than retry_limit) is
   retried with backoff and the target still finishes with the same
   result; the only trace left is the one burned slice. *)
let test_fault_retry_recovers () =
  let clean = run_campaign ~options:(opts ()) lib_src in
  let options =
    O.make ~seed:7 ~max_runs:400 ~per_function_runs:100 ~retry_limit:3
      ~faultsim:(Faultsim.make [ (Faultsim.Worker_crash, Some 0, 1) ])
      ()
  in
  let r = run_campaign ~options lib_src in
  let hit = find_result r "get_status" and ref_hit = find_result clean "get_status" in
  Alcotest.(check bool) "no quarantine for a one-off fault" true
    (match hit.Campaign.tr_retired with Campaign.Quarantined _ -> false | _ -> true);
  Alcotest.(check bool) "same retirement as the fault-free campaign" true
    (hit.Campaign.tr_retired = ref_hit.Campaign.tr_retired);
  Alcotest.(check int) "same runs" ref_hit.Campaign.tr_runs hit.Campaign.tr_runs;
  Alcotest.(check bool) "same coverage" true
    (hit.Campaign.tr_coverage = ref_hit.Campaign.tr_coverage);
  Alcotest.(check int) "exactly one extra (faulted) slice"
    (ref_hit.Campaign.tr_slices + 1) hit.Campaign.tr_slices;
  let keys c = List.map (fun (_, b) -> Dart.Driver.bug_key b) c.Campaign.cam_crashes in
  Alcotest.(check bool) "same crash set" true (keys clean = keys r);
  Alcotest.(check bool) "nothing lost" true (Campaign.no_lost_targets r)

(* The chaos soak invariants, on the osip simulacrum: whatever the
   injection schedule does, no target is lost and no bug is invented. *)
let test_chaos_oracle () =
  let source, _ = Workloads.Osip_sim.generate ~seed:3 ~n:12 in
  let run ?faultsim ?(retry_limit = 3) () =
    let options =
      O.make ~seed:7 ~max_runs:600 ~per_function_runs:150 ~retry_limit ?faultsim ()
    in
    run_campaign ~options source
  in
  let clean = run () in
  let chaotic =
    run ~faultsim:(Faultsim.chaos ~seed:11 [ (Faultsim.Worker_crash, 2500) ])
      ~retry_limit:2 ()
  in
  Alcotest.(check bool) "clean oracle holds" true (Campaign.no_lost_targets clean);
  Alcotest.(check bool) "chaos oracle holds" true (Campaign.no_lost_targets chaotic);
  Alcotest.(check bool) "chaos campaign finished" true
    (chaotic.Campaign.cam_status = Campaign.Finished);
  (* A 25% crash rate against retry_limit 2 must actually exercise the
     quarantine path (the schedule is a pure function of the seeds, so
     this is not a flaky assertion). *)
  let quarantined r =
    List.filter
      (fun tr ->
        match tr.Campaign.tr_retired with Campaign.Quarantined _ -> true | _ -> false)
      r.Campaign.cam_results
  in
  Alcotest.(check int) "fault-free campaign quarantines nothing" 0
    (List.length (quarantined clean));
  Alcotest.(check bool) "chaos campaign quarantined something" true
    (quarantined chaotic <> []);
  (* Injected worker crashes may lose bugs (with the slices that found
     them); they can never add one. *)
  let keys r = List.map (fun (_, b) -> Dart.Driver.bug_key b) r.Campaign.cam_crashes in
  List.iter
    (fun k ->
      Alcotest.(check bool) "chaos bug exists in the fault-free run" true
        (List.mem k (keys clean)))
    (keys chaotic)

(* io_error at rate 1.0: every status/checkpoint write fails, and the
   campaign degrades to warnings — same results, no checkpoint. *)
let test_io_error_degrades_to_warning () =
  let clean = run_campaign ~options:(opts ()) lib_src in
  let status_path = Filename.temp_file "dart_status" ".json" in
  let ck_path = Filename.temp_file "dart_campaign" ".ck" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ status_path; ck_path ])
    (fun () ->
      let warnings = ref [] in
      let options =
        O.make ~seed:7 ~max_runs:400 ~per_function_runs:100
          ~faultsim:(Faultsim.chaos ~seed:1 [ (Faultsim.Io_error, 10000) ])
          ~telemetry:{ Dart.Telemetry.default_config with
                       Dart.Telemetry.status_path = Some status_path }
          ()
      in
      let r =
        match
          Campaign.run ~options ~checkpoint:ck_path
            ~progress:(fun m -> warnings := m :: !warnings)
            lib_src
        with
        | Ok r -> r
        | Error msg -> Alcotest.failf "campaign failed under io_error chaos: %s" msg
      in
      Alcotest.(check string) "results identical to the fault-free campaign"
        (json_sans_phases clean) (json_sans_phases r);
      Alcotest.(check bool) "the failures were reported" true
        (List.exists (fun m -> Str_contains.contains m "warning") !warnings);
      Alcotest.(check int) "status file never written" 0
        (let ic = open_in_bin status_path in
         Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic));
      Alcotest.(check int) "checkpoint never written" 0
        (let ic = open_in_bin ck_path in
         Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)))

(* Salvage sweep: for EVERY line-prefix of a valid checkpoint, salvage
   recovers exactly the CRC-complete records of the prefix — and plain
   strict parsing refuses anything short of the whole file. *)
let test_salvage_recovers_longest_prefix () =
  let options = opts () in
  let r = run_campaign ~options lib_src in
  let full = Campaign.to_string ~options ~library:lib_src r in
  let all =
    match Campaign.of_string full with
    | Ok (_, results) -> List.map (fun tr -> tr.Campaign.tr_name) results
    | Error e -> Alcotest.failf "full checkpoint unreadable: %s" e
  in
  Alcotest.(check int) "three records to salvage from" 3 (List.length all);
  let path = Filename.temp_file "dart_salvage" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let load_salvaged text =
        let oc = open_out_bin path in
        output_string oc text;
        close_out oc;
        let warnings = ref [] in
        let res =
          Campaign.load
            ~salvage:(fun m -> warnings := m :: !warnings)
            ~path ~options ~library:lib_src ()
        in
        (res, !warnings)
      in
      let starts_with p l =
        String.length l >= String.length p && String.sub l 0 (String.length p) = p
      in
      let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' full) in
      let n = List.length lines in
      for i = 0 to n do
        let prefix = List.filteri (fun j _ -> j < i) lines in
        let text = String.concat "" (List.map (fun l -> l ^ "\n") prefix) in
        (* A record only survives once its crc trailer is on disk; a
           prefix that cuts the header salvages nothing at all. *)
        let expected =
          if i < 3 then 0 else List.length (List.filter (starts_with "crc ") prefix)
        in
        (match load_salvaged text with
         | (Ok results, warnings) ->
           Alcotest.(check (list string))
             (Printf.sprintf "prefix of %d/%d lines keeps the first %d records" i n expected)
             (List.filteri (fun j _ -> j < expected) all)
             (List.map (fun tr -> tr.Campaign.tr_name) results);
           if i < n then
             Alcotest.(check bool)
               (Printf.sprintf "truncation at line %d is reported" i)
               true (warnings <> [])
           else
             Alcotest.(check (list string)) "intact checkpoint salvages silently" [] warnings
         | (Error msg, _) ->
           Alcotest.failf "salvage refused the prefix of %d lines: %s" i msg);
        if i < n then begin
          match Campaign.of_string text with
          | Ok _ -> Alcotest.failf "strict parse accepted a %d-line truncation" i
          | Error _ -> ()
        end
      done)

(* A bit-flip inside a record: the CRC catches what structural parsing
   would let through, and salvage keeps everything before the damage. *)
let test_salvage_detects_corruption () =
  let options = opts () in
  let r = run_campaign ~options lib_src in
  let full = Campaign.to_string ~options ~library:lib_src r in
  let lines = String.split_on_char '\n' full in
  let target_seen = ref 0 in
  let corrupted =
    List.map
      (fun l ->
        if String.length l >= 7 && String.sub l 0 7 = "target " then begin
          incr target_seen;
          if !target_seen = 2 then begin
            (* Bump the trailing digit (runs/bopens field): still a
               perfectly well-formed record, only the checksum knows. *)
            let last = String.length l - 1 in
            String.sub l 0 last ^ (if l.[last] = '0' then "1" else "0")
          end
          else l
        end
        else l)
      lines
    |> String.concat "\n"
  in
  (match Campaign.of_string corrupted with
   | Ok _ -> Alcotest.fail "strict parse accepted a corrupted record"
   | Error msg ->
     Alcotest.(check bool) "error names the checksum" true
       (Str_contains.contains msg "checksum mismatch"));
  let path = Filename.temp_file "dart_salvage" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc corrupted;
      close_out oc;
      let warnings = ref [] in
      (match
         Campaign.load
           ~salvage:(fun m -> warnings := m :: !warnings)
           ~path ~options ~library:lib_src ()
       with
       | Ok [ kept ] ->
         Alcotest.(check string) "only the record before the damage survives"
           "get_status" kept.Campaign.tr_name
       | Ok l -> Alcotest.failf "salvaged %d records, wanted 1" (List.length l)
       | Error msg -> Alcotest.failf "salvage refused: %s" msg);
      Alcotest.(check bool) "the warning names the checksum" true
        (List.exists (fun m -> Str_contains.contains m "checksum mismatch") !warnings);
      (* Salvage repairs corruption, never configuration mismatches:
         silently dropping a healthy checkpoint of a different campaign
         would destroy real work. *)
      let oc = open_out_bin path in
      output_string oc full;
      close_out oc;
      match
        Campaign.load ~salvage:(fun _ -> ()) ~path ~options:(opts ~seed:8 ()) ~library:lib_src ()
      with
      | Ok _ -> Alcotest.fail "salvage ignored a configuration mismatch"
      | Error msg ->
        Alcotest.(check bool) "mismatch still explained" true
          (Str_contains.contains msg "different campaign configuration"))

(* SIGTERM mid-write: the checkpoint on disk is always the old or the
   new complete file, never a torn one — the write-then-rename pair the
   codec tests assume, exercised under a real asynchronous kill. The
   victim is the ckwriter helper executable (OCaml 5 forbids Unix.fork
   once domains have been created), which runs the same campaign with
   the same options and rewrites its checkpoint in a tight loop. *)
let test_sigterm_checkpoint_atomicity () =
  let options = opts () in
  let r = run_campaign ~options lib_src in
  let expected = Campaign.to_string ~options ~library:lib_src r in
  let path = Filename.temp_file "dart_sigterm" ".ck" in
  let lib_file = Filename.temp_file "dart_sigterm" ".mc" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp"; lib_file ])
    (fun () ->
      let oc = open_out_bin lib_file in
      output_string oc lib_src;
      close_out oc;
      Sys.remove path;
      let exe = Filename.concat (Sys.getcwd ()) "ckwriter.exe" in
      let pid =
        Unix.create_process exe
          [| exe; path; lib_file |]
          Unix.stdin Unix.stdout Unix.stderr
      in
      (* Wait for the writer's first complete checkpoint, then let the
         kill land somewhere inside a later rewrite. *)
      let rec wait_ready n =
        if n = 0 then Alcotest.fail "ckwriter never produced a checkpoint"
        else if not (Sys.file_exists path) then begin
          Unix.sleepf 0.01;
          wait_ready (n - 1)
        end
      in
      wait_ready 3000;
      Unix.sleepf 0.05;
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "the kill landed mid-loop" true
        (status = Unix.WSIGNALED Sys.sigterm);
      Alcotest.(check bool) "a checkpoint exists" true (Sys.file_exists path);
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "and it is a complete one" expected text;
      match Campaign.of_string text with
      | Ok (_, results) ->
        Alcotest.(check int) "parseable, all records present" 3 (List.length results)
      | Error msg -> Alcotest.failf "checkpoint torn by SIGTERM: %s" msg)

let suite =
  [ Alcotest.test_case "discover: scalar signatures in declaration order" `Quick
      test_discover;
    Alcotest.test_case "discover: harness helpers excluded" `Quick
      test_discover_excludes_harness;
    Alcotest.test_case "zero targets is an error" `Quick test_zero_targets;
    Alcotest.test_case "frontier counting" `Quick test_frontier_count;
    Alcotest.test_case "campaign outcomes on a mixed library" `Quick
      test_campaign_outcomes;
    Alcotest.test_case "jobs 1 and jobs 4 agree byte-for-byte" `Quick
      test_jobs_determinism;
    Alcotest.test_case "priority policy never changes results" `Quick
      test_priority_is_result_neutral;
    Alcotest.test_case "slice size never changes the crash set" `Quick
      test_slicing_is_result_neutral_for_crashes;
    Alcotest.test_case "trace structure is jobs-invariant" `Quick
      test_trace_structure_jobs_invariant;
    Alcotest.test_case "aggregate JSON carries one phases line" `Quick
      test_json_phases_line;
    Alcotest.test_case "status snapshot at campaign exit" `Quick
      test_campaign_status_file;
    Alcotest.test_case "checkpoint codec round-trips" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects single-shot checkpoints" `Quick
      test_codec_rejects_single_shot;
    Alcotest.test_case "checkpoint meta guard" `Quick test_checkpoint_meta_guard;
    Alcotest.test_case "resume equals the uninterrupted campaign" `Quick
      test_resume_equivalence;
    Alcotest.test_case "aggregate sites: sorted, distinct, program-only" `Quick
      test_aggregate_sites;
    Alcotest.test_case "target keys track source identity" `Quick test_target_keys;
    Alcotest.test_case "session caches preparations" `Quick test_session_prepare_cache;
    Alcotest.test_case "session rejects negative jobs" `Quick
      test_session_rejects_negative_jobs;
    Alcotest.test_case "engine reproduces Driver.run" `Quick
      test_engine_matches_driver_run;
    Alcotest.test_case "engine parallel and random modes" `Quick
      test_engine_parallel_and_random;
    Alcotest.test_case "engine rejects checkpoint misuse" `Quick
      test_engine_rejects_checkpoint_misuse;
    Alcotest.test_case "target overrides effective options" `Quick
      test_effective_options;
    Alcotest.test_case "osip simulacrum: detection matches ground truth" `Quick
      test_osip_campaign_smoke;
    Alcotest.test_case "quarantine after consecutive faults" `Quick test_quarantine;
    Alcotest.test_case "transient fault: retry recovers byte-identically" `Quick
      test_fault_retry_recovers;
    Alcotest.test_case "chaos soak oracle on the osip simulacrum" `Quick
      test_chaos_oracle;
    Alcotest.test_case "io_error chaos degrades to warnings" `Quick
      test_io_error_degrades_to_warning;
    Alcotest.test_case "salvage recovers every truncation prefix" `Quick
      test_salvage_recovers_longest_prefix;
    Alcotest.test_case "salvage detects record corruption" `Quick
      test_salvage_detects_corruption;
    Alcotest.test_case "SIGTERM leaves an old-or-new complete checkpoint" `Quick
      test_sigterm_checkpoint_atomicity ]
