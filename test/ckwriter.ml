(* Helper process for the SIGTERM checkpoint-atomicity test (OCaml 5
   forbids Unix.fork once domains have been created, so the victim is a
   separate executable). Runs a small campaign on the library in
   argv.(2), then rewrites its checkpoint to argv.(1) in a tight loop
   until the test kills it mid-write. The options here must mirror the
   test's [opts ()] so the parent can predict the file's exact bytes. *)

let () =
  let path = Sys.argv.(1) and lib_file = Sys.argv.(2) in
  let library =
    let ic = open_in_bin lib_file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let options =
    Dart.Driver.Options.make ~seed:7 ~max_runs:400 ~per_function_runs:100 ()
  in
  match Dart.Campaign.run ~options library with
  | Error msg ->
    prerr_endline ("ckwriter: " ^ msg);
    exit 2
  | Ok report ->
    (* Bounded only as a runaway backstop: the test's SIGTERM arrives
       within a fraction of a second. *)
    for _ = 1 to 2_000_000 do
      Dart.Campaign.save ~path ~options ~library report
    done
