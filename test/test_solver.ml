(* The constraint solver: fast path, Gaussian elimination, simplex +
   branch-and-bound, disequality splitting, and a soundness property —
   every Sat model must satisfy the constraints (checked independently
   of the solver's own final verification). *)

open Zarith_lite
open Symbolic

let z = Zint.of_int
let v = Linexpr.var

let mk c0 terms =
  List.fold_left
    (fun acc (x, c) -> Linexpr.add acc (Linexpr.scale (z c) (v x)))
    (Linexpr.of_int c0) terms

let le e = Constr.make e Constr.Le0
let lt e = Constr.make e Constr.Lt0
let eq e = Constr.make e Constr.Eq0
let ne e = Constr.make e Constr.Ne0

let expect_sat cs =
  match Solver.solve cs with
  | Solver.Sat model ->
    if not (Solver.check_model cs model) then Alcotest.fail "model does not satisfy";
    model
  | Solver.Unsat -> Alcotest.fail "expected SAT, got UNSAT"
  | Solver.Unknown -> Alcotest.fail "expected SAT, got UNKNOWN"

let expect_unsat cs =
  match Solver.solve cs with
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT, got SAT"
  | Solver.Unsat -> ()
  | Solver.Unknown -> Alcotest.fail "expected UNSAT, got UNKNOWN"

let value model x =
  match List.assoc_opt x model with
  | Some z -> Zint.to_int z
  | None -> Alcotest.failf "no value for x%d" x

let test_univariate () =
  (* x = 10 *)
  let model = expect_sat [ eq (mk (-10) [ (0, 1) ]) ] in
  Alcotest.(check int) "x = 10" 10 (value model 0);
  (* x <= 5 /\ x >= 3 *)
  let model = expect_sat [ le (mk (-5) [ (0, 1) ]); le (mk 3 [ (0, -1) ]) ] in
  let x = value model 0 in
  Alcotest.(check bool) "3 <= x <= 5" true (x >= 3 && x <= 5);
  (* x < 4 /\ x > 2 has the unique integer solution 3. *)
  let model = expect_sat [ lt (mk (-4) [ (0, 1) ]); lt (mk 2 [ (0, -1) ]) ] in
  Alcotest.(check int) "strictness over integers" 3 (value model 0);
  expect_unsat [ lt (mk (-3) [ (0, 1) ]); lt (mk 2 [ (0, -1) ]) ]

let test_equalities () =
  (* x - y = 0 /\ y = 7 *)
  let model = expect_sat [ eq (mk 0 [ (0, 1); (1, -1) ]); eq (mk (-7) [ (1, 1) ]) ] in
  Alcotest.(check int) "x" 7 (value model 0);
  Alcotest.(check int) "y" 7 (value model 1);
  (* x = y /\ x = y + 1 *)
  expect_unsat [ eq (mk 0 [ (0, 1); (1, -1) ]); eq (mk (-1) [ (0, 1); (1, -1) ]) ];
  (* chained: a = b, b = c, c = 3 *)
  let model =
    expect_sat
      [ eq (mk 0 [ (0, 1); (1, -1) ]);
        eq (mk 0 [ (1, 1); (2, -1) ]);
        eq (mk (-3) [ (2, 1) ]) ]
  in
  Alcotest.(check int) "a" 3 (value model 0)

let test_integrality () =
  (* 2x = 3 has no integer solution (no unit pivot: exercises B&B). *)
  expect_unsat [ eq (mk (-3) [ (0, 2) ]) ];
  (* 2x = 4 does. *)
  let model = expect_sat [ eq (mk (-4) [ (0, 2) ]) ] in
  Alcotest.(check int) "2x=4" 2 (value model 0);
  (* 3x + 3y = 7 unsat over Z though feasible over Q. *)
  expect_unsat [ eq (mk (-7) [ (0, 3); (1, 3) ]) ]

let test_multivariate () =
  (* x + y <= 4 /\ x >= 3 /\ y >= 3 : unsat. *)
  expect_unsat
    [ le (mk (-4) [ (0, 1); (1, 1) ]); le (mk 3 [ (0, -1) ]); le (mk 3 [ (1, -1) ]) ];
  (* x + y >= 10 /\ x - y >= 0 /\ x <= 6: x in [5,6]. *)
  let model =
    expect_sat
      [ le (mk 10 [ (0, -1); (1, -1) ]); le (mk 0 [ (0, -1); (1, 1) ]);
        le (mk (-6) [ (0, 1) ]) ]
  in
  let x = value model 0 and y = value model 1 in
  Alcotest.(check bool) "constraints hold" true (x + y >= 10 && x >= y && x <= 6);
  (* 2x + 3y = 12 /\ x >= 1 /\ y >= 1: (3,2) is the only small one. *)
  let model =
    expect_sat
      [ eq (mk (-12) [ (0, 2); (1, 3) ]); le (mk 1 [ (0, -1) ]); le (mk 1 [ (1, -1) ]) ]
  in
  let x = value model 0 and y = value model 1 in
  Alcotest.(check bool) "diophantine" true ((2 * x) + (3 * y) = 12 && x >= 1 && y >= 1)

let test_disequalities () =
  (* x != 0 with x in [0, 1]: forces 1. *)
  let model =
    expect_sat [ ne (mk 0 [ (0, 1) ]); le (mk 0 [ (0, -1) ]); le (mk (-1) [ (0, 1) ]) ]
  in
  Alcotest.(check int) "x=1" 1 (value model 0);
  (* x in [0,2], x != 0, x != 1, x != 2: unsat. *)
  expect_unsat
    [ le (mk 0 [ (0, -1) ]); le (mk (-2) [ (0, 1) ]); ne (mk 0 [ (0, 1) ]);
      ne (mk (-1) [ (0, 1) ]); ne (mk (-2) [ (0, 1) ]) ];
  (* multivariate: x = y /\ x + y != 0 /\ x <= 0 => x = y < 0. *)
  let model =
    expect_sat
      [ eq (mk 0 [ (0, 1); (1, -1) ]); ne (mk 0 [ (0, 1); (1, 1) ]); le (mk 0 [ (0, 1) ]) ]
  in
  let x = value model 0 and y = value model 1 in
  Alcotest.(check bool) "x=y<0" true (x = y && x + y <> 0 && x <= 0);
  (* 2x != 5 is vacuous over the integers. *)
  let model = expect_sat [ ne (mk (-5) [ (0, 2) ]) ] in
  ignore (value model 0)

let test_word_bounds () =
  (* x > max_int32 is unsat within the 32-bit box. *)
  expect_unsat [ le (mk Dart_util.Word32.max_value [ (0, -1) ]); ne (mk (-Dart_util.Word32.max_value) [ (0, 1) ]) ];
  (* x >= max_int32 forces exactly max_int32. *)
  let model = expect_sat [ le (mk Dart_util.Word32.max_value [ (0, -1) ]) ] in
  Alcotest.(check int) "clamped" Dart_util.Word32.max_value (value model 0)

let test_prefer () =
  (* Under-constrained variables take the preferred (previous) value. *)
  let prefer x = if x = 1 then Some (z 777) else None in
  match Solver.solve ~prefer [ le (mk (-100) [ (0, 1) ]); le (mk (-1000) [ (1, 1) ]) ] with
  | Solver.Sat model ->
    Alcotest.(check int) "prefers old value" 777 (value model 1)
  | _ -> Alcotest.fail "expected SAT"

let test_no_simplex_ablation () =
  (* With simplex disabled, multivariate systems come back Unknown;
     univariate ones still solve. *)
  (match Solver.solve ~use_simplex:false [ le (mk 10 [ (0, -1); (1, -1) ]) ] with
   | Solver.Unknown -> ()
   | _ -> Alcotest.fail "expected Unknown without simplex");
  (match Solver.solve ~use_simplex:false [ eq (mk (-10) [ (0, 1) ]) ] with
   | Solver.Sat _ -> ()
   | _ -> Alcotest.fail "fast path should not need simplex")

let test_gcd_tightening () =
  (* 3x + 3y = 7: rationally feasible, integrally unsat via the GCD
     divisibility test (no branch-and-bound wandering). *)
  expect_unsat [ eq (mk (-7) [ (0, 3); (1, 3) ]) ];
  (* 6x + 10y = 8 has gcd 2 | 8: solvable. *)
  let model = expect_sat [ eq (mk (-8) [ (0, 6); (1, 10) ]) ] in
  let x = value model 0 and y = value model 1 in
  Alcotest.(check int) "6x+10y" 8 ((6 * x) + (10 * y));
  (* Inequality tightening: 4x <= 10 means x <= 2 over Z. *)
  let model = expect_sat [ le (mk (-10) [ (0, 4) ]); le (mk 2 [ (0, -1) ]) ] in
  Alcotest.(check int) "4x<=10 and x>=2" 2 (value model 0)

let test_simplex_required_cases () =
  (* Non-unit-coefficient conjunctions that defeat Gaussian elimination
     and intervals; integer solutions must still be found/refuted. *)
  let model =
    expect_sat
      [ eq (mk (-10000) [ (0, 2); (1, 3) ]);
        eq (mk (-20000) [ (1, 5); (2, 7) ]);
        le (mk 1 [ (0, -1) ]); le (mk 1 [ (1, -1) ]); le (mk 1 [ (2, -1) ]) ]
  in
  let a = value model 0 and b = value model 1 and c = value model 2 in
  Alcotest.(check bool) "system holds" true
    ((2 * a) + (3 * b) = 10000 && (5 * b) + (7 * c) = 20000 && a >= 1 && b >= 1 && c >= 1);
  (* 2x + 4y = 5: even lhs, odd rhs. *)
  expect_unsat [ eq (mk (-5) [ (0, 2); (1, 4) ]) ];
  (* 7x - 3y = 1 with x,y in [0, 10]: (1, 2) works. *)
  let model =
    expect_sat
      [ eq (mk (-1) [ (0, 7); (1, -3) ]);
        le (mk 0 [ (0, -1) ]); le (mk (-10) [ (0, 1) ]);
        le (mk 0 [ (1, -1) ]); le (mk (-10) [ (1, 1) ]) ]
  in
  let x = value model 0 and y = value model 1 in
  Alcotest.(check int) "7x-3y=1" 1 ((7 * x) - (3 * y))

let test_stats () =
  let stats = Solver.create_stats () in
  ignore (Solver.solve ~stats [ eq (mk (-10) [ (0, 1) ]) ]);
  ignore (Solver.solve ~stats [ le (mk 10 [ (0, -1); (1, -1) ]) ]);
  Alcotest.(check int) "queries" 2 (Solver.queries stats);
  Alcotest.(check bool) "fast path used" true (Solver.fast_path stats >= 1);
  Alcotest.(check bool) "simplex used" true (Solver.simplex_queries stats >= 1);
  (* The assoc view round-trips through of_assoc and sums with add_stats. *)
  let a = Solver.to_assoc stats in
  Alcotest.(check int) "assoc queries" 2 (List.assoc "queries" a);
  let copy = Solver.of_assoc a in
  Alcotest.(check (list (pair string int))) "of_assoc round-trips" a (Solver.to_assoc copy);
  Solver.add_stats ~into:copy stats;
  Alcotest.(check int) "add_stats doubles queries" 4 (Solver.queries copy);
  Alcotest.check_raises "unknown counter rejected"
    (Invalid_argument "Solver.of_assoc: unknown counter \"bogus\"") (fun () ->
      ignore (Solver.of_assoc [ ("bogus", 1) ]))

(* ---- property: planted solutions are found -------------------------------- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:150 ~name gen f)

(* Build a random constraint system that is satisfied by a planted
   assignment, then require the solver to find some model. *)
let planted_gen =
  let open QCheck2.Gen in
  let nvars = 4 in
  let* plant = array_size (return nvars) (int_range (-50) 50) in
  let* n_constraints = int_range 1 6 in
  let* rows =
    list_size (return n_constraints)
      (let* coefs = array_size (return nvars) (int_range (-4) 4) in
       let* rel = oneofl [ `Le; `Eq; `Ne_avoid ] in
       return (coefs, rel))
  in
  return (plant, rows)

let constraints_of_plant (plant, rows) =
  List.filter_map
    (fun (coefs, rel) ->
      let lhs_val = Array.to_list coefs |> List.mapi (fun i c -> c * plant.(i)) |> List.fold_left ( + ) 0 in
      let terms = Array.to_list coefs |> List.mapi (fun i c -> (i, c)) |> List.filter (fun (_, c) -> c <> 0) in
      if terms = [] then None
      else begin
        match rel with
        | `Eq -> Some (eq (mk (-lhs_val) terms))
        | `Le ->
          (* lhs <= lhs_val + slack *)
          Some (le (mk (-lhs_val - 3) terms))
        | `Ne_avoid ->
          (* lhs != lhs_val + 1 (true under the plant) *)
          Some (ne (mk (-lhs_val - 1) terms))
      end)
    rows

let properties =
  [ prop "planted systems are satisfiable" planted_gen (fun instance ->
        let cs = constraints_of_plant instance in
        match Solver.solve cs with
        | Solver.Sat model -> Solver.check_model cs model
        | Solver.Unsat -> false (* the plant satisfies them: UNSAT is wrong *)
        | Solver.Unknown -> true (* allowed, conservative *));
    prop "models always verify" planted_gen (fun instance ->
        (* Even for mutated (possibly unsat) systems, a Sat answer must
           carry a correct model. *)
        let cs = constraints_of_plant instance in
        let mutated =
          match cs with
          | c :: rest -> Constr.negate c :: rest
          | [] -> []
        in
        match Solver.solve mutated with
        | Solver.Sat model -> Solver.check_model mutated model
        | Solver.Unsat | Solver.Unknown -> true) ]

let suite =
  [ Alcotest.test_case "univariate" `Quick test_univariate;
    Alcotest.test_case "equalities" `Quick test_equalities;
    Alcotest.test_case "integrality" `Quick test_integrality;
    Alcotest.test_case "multivariate" `Quick test_multivariate;
    Alcotest.test_case "disequalities" `Quick test_disequalities;
    Alcotest.test_case "32-bit bounds" `Quick test_word_bounds;
    Alcotest.test_case "prefer previous values" `Quick test_prefer;
    Alcotest.test_case "ablation: no simplex" `Quick test_no_simplex_ablation;
    Alcotest.test_case "gcd tightening" `Quick test_gcd_tightening;
    Alcotest.test_case "simplex-required cases" `Quick test_simplex_required_cases;
    Alcotest.test_case "stats" `Quick test_stats ]
  @ properties
