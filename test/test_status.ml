(* Status snapshots (--status / dartc watch): the JSON codec round
   trip, the atomic write/read pair, malformed-input rejection, and the
   deterministic terminal render watch --once golden-tests against. *)

module S = Dart.Status

let snapshot =
  { S.st_mode = S.Campaign;
    st_elapsed_ns = 2_500_000_000L;
    st_budget_ns = Some 10_000_000_000L;
    st_runs = 4200;
    st_max_runs = 12_000;
    st_execs_per_sec = 1680;
    st_bugs = 3;
    st_covered = 128;
    st_frontier = 9;
    st_done = 40;
    st_active = 6;
    st_remaining = 16;
    st_round = 5;
    st_solve_p50_ns = 4_095L;
    st_solve_p99_ns = 65_535L }

let check_eq msg a b = Alcotest.(check bool) msg true (a = b)

let test_json_roundtrip () =
  let line = S.to_json snapshot in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  (match S.of_json line with
   | Ok st -> check_eq "campaign snapshot round-trips" snapshot st
   | Error msg -> Alcotest.failf "%s failed to parse: %s" line msg);
  (* Run mode without a budget omits the field entirely. *)
  let run_snap =
    { snapshot with S.st_mode = S.Run; st_budget_ns = None; st_round = 0 }
  in
  let line = S.to_json run_snap in
  Alcotest.(check bool) "no budget field when unset" false
    (Str_contains.contains line "budget_ns");
  match S.of_json line with
  | Ok st -> check_eq "run snapshot round-trips" run_snap st
  | Error msg -> Alcotest.failf "%s failed to parse: %s" line msg

let test_rejects_malformed () =
  let cases =
    [ ("", "truncated");
      ("{oops", "not JSON");
      ("{}", "missing fields");
      ({|{"schema":"dart-checkpoint","version":1}|}, "wrong schema");
      ( {|{"schema":"dart-status","version":99,"mode":"run"}|},
        "unsupported version" );
      ( {|{"schema":"dart-status","version":1,"mode":"warp"}|},
        "unknown mode" );
      ( (let line = S.to_json snapshot in
         String.sub line 0 (String.length line - 10)),
        "torn write" ) ]
  in
  List.iter
    (fun (line, what) ->
      match S.of_json line with
      | Ok _ -> Alcotest.failf "%s accepted: %s" what line
      | Error _ -> ())
    cases

let test_write_read () =
  let path = Filename.temp_file "dart_status" ".json" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      S.write ~path snapshot;
      Alcotest.(check bool) "no tmp file left behind" false
        (Sys.file_exists (path ^ ".tmp"));
      (match S.read ~path with
       | Ok st -> check_eq "written snapshot reads back" snapshot st
       | Error msg -> Alcotest.failf "read failed: %s" msg);
      (* Overwrite must replace, not append. *)
      let st2 = { snapshot with S.st_runs = 9999 } in
      S.write ~path st2;
      match S.read ~path with
      | Ok st -> check_eq "rewrite replaces the snapshot" st2 st
      | Error msg -> Alcotest.failf "reread failed: %s" msg)

let test_read_missing () =
  match S.read ~path:"/nonexistent/dart_status.json" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* Failure classification drives `dartc watch` follow mode: transient
   failures (the writer's rename may simply not have landed yet, or the
   file was deleted between campaigns) are waited out; malformed content
   can never self-heal under atomic renames, so it stops the watcher. *)
let test_read_classified () =
  let transient path what =
    match S.read_classified ~path with
    | Error (`Transient _) -> ()
    | Error (`Malformed msg) -> Alcotest.failf "%s classified malformed: %s" what msg
    | Ok _ -> Alcotest.failf "%s parsed" what
  in
  transient "/nonexistent/dart_status.json" "missing file";
  let path = Filename.temp_file "dart_status" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* temp_file creates it empty: a reader racing the very first
         write sees exactly this. *)
      transient path "empty file";
      let oc = open_out path in
      output_string oc "\n  \n";
      close_out oc;
      transient path "whitespace-only file";
      let oc = open_out path in
      output_string oc "{\"schema\":\"dart-status\",oops";
      close_out oc;
      (match S.read_classified ~path with
       | Error (`Malformed _) -> ()
       | Error (`Transient msg) ->
         Alcotest.failf "garbage classified transient: %s" msg
       | Ok _ -> Alcotest.fail "garbage parsed");
      (* A deleted-then-rewritten file recovers: the sequence a watcher
         sees when a status file is replaced mid-watch. *)
      Sys.remove path;
      transient path "deleted mid-watch";
      S.write ~path snapshot;
      match S.read_classified ~path with
      | Ok st -> check_eq "rewritten snapshot reads back" snapshot st
      | Error (`Transient msg) | Error (`Malformed msg) ->
        Alcotest.failf "healthy snapshot rejected: %s" msg)

(* The render is a pure function of the snapshot: golden-test it, so
   `dartc watch --once` output is pinned. *)
let test_render_golden () =
  let expected =
    "DART campaign status\n\
    \  elapsed    2.50s / 10.00s (25%)\n\
    \  runs       4200 / 12000 (35%), 1680 execs/sec\n\
    \  targets    40 done, 6 active, 16 remaining (round 5)\n\
    \  coverage   128 branch directions, 9 frontier sites\n\
    \  bugs       3\n\
    \  solve      p50 <=4.1us  p99 <=65.5us\n"
  in
  Alcotest.(check string) "campaign render" expected (S.render snapshot);
  let run_snap =
    { snapshot with S.st_mode = S.Run; st_budget_ns = None; st_round = 0 }
  in
  let rendered = S.render run_snap in
  Alcotest.(check bool) "run mode has no targets line" false
    (Str_contains.contains rendered "targets");
  Alcotest.(check bool) "no budget: bare elapsed" true
    (Str_contains.contains rendered "  elapsed    2.50s\n")

let suite =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "rejects malformed" `Quick test_rejects_malformed;
    Alcotest.test_case "atomic write/read" `Quick test_write_read;
    Alcotest.test_case "missing file" `Quick test_read_missing;
    Alcotest.test_case "transient/malformed classification" `Quick test_read_classified;
    Alcotest.test_case "render golden" `Quick test_render_golden ]
