(* The parallel orchestrator: merge-layer algebra on fabricated
   reports, the jobs=1 determinism contract against Driver.run, bug-set
   agreement at jobs=4, the strategy candidate set, and the
   Random_search budget boundary. *)

module Strategy = Dart.Strategy

let loc line = { Minic.Loc.file = "t.mc"; line; col = 1 }

let site fn pc line = { Machine.site_fn = fn; site_pc = pc; site_loc = loc line }

let bug ?(fault = Machine.Abort) ?(run = 1) fn pc =
  { Dart.Driver.bug_fault = fault;
    bug_site = site fn pc 1;
    bug_run = run;
    bug_inputs = [ (0, 7) ] }

let stats ~queries ~sat = Solver.of_assoc [ ("queries", queries); ("sat", sat) ]

let fake_report ?(verdict = Dart.Driver.Budget_exhausted) ?(runs = 10) ?(restarts = 1)
    ?(steps = 100) ?(coverage = []) ?(paths = 5) ?(all_linear = true)
    ?(all_locs_definite = true) ?(stats = Solver.create_stats ()) ?(bugs = []) () =
  { Dart.Driver.verdict;
    runs;
    restarts;
    total_steps = steps;
    branches_covered = List.length coverage;
    coverage_sites = coverage;
    paths_explored = paths;
    resource_limited = 0;
    all_linear;
    all_locs_definite;
    solver_stats = stats;
    metrics = Dart.Telemetry.create_metrics ();
    bugs }

(* ---- merge layer ---------------------------------------------------------- *)

let test_merge_bug_dedup () =
  let b1 = bug ~run:5 "f" 3 in
  let b2 = bug ~run:2 "f" 3 (* same defect, cheaper witness *) in
  let b3 = bug ~run:9 "g" 1 in
  let b4 = bug ~fault:Machine.Null_deref ~run:4 "f" 3 (* same site, different fault *) in
  let m =
    Dart.Parallel.merge
      [ fake_report ~bugs:[ b1 ] (); fake_report ~bugs:[ b2; b3 ] ();
        fake_report ~bugs:[ b4 ] () ]
  in
  Alcotest.(check int) "three distinct bugs" 3 (List.length m.Dart.Driver.bugs);
  let keys = List.map Dart.Driver.bug_key m.Dart.Driver.bugs in
  Alcotest.(check bool) "keys sorted" true (keys = List.sort compare keys);
  let kept =
    List.find (fun b -> Dart.Driver.bug_key b = ("f", 3, Machine.Abort)) m.Dart.Driver.bugs
  in
  Alcotest.(check int) "cheapest witness kept" 2 kept.Dart.Driver.bug_run;
  (match m.Dart.Driver.verdict with
   | Dart.Driver.Bug_found b ->
     Alcotest.(check bool) "representative is min-key bug" true
       (Dart.Driver.bug_key b = List.hd keys)
   | _ -> Alcotest.fail "expected Bug_found")

let test_merge_coverage_union () =
  let c1 = [ ("f", 0, true); ("f", 0, false); ("f", 2, true) ] in
  let c2 = [ ("f", 0, true); ("g", 1, true) ] in
  let m = Dart.Parallel.merge [ fake_report ~coverage:c1 (); fake_report ~coverage:c2 () ] in
  Alcotest.(check int) "union size" 4 m.Dart.Driver.branches_covered;
  Alcotest.(check bool) "sites sorted" true
    (m.Dart.Driver.coverage_sites = List.sort compare m.Dart.Driver.coverage_sites);
  Alcotest.(check int) "sites length matches" 4 (List.length m.Dart.Driver.coverage_sites)

let test_merge_counter_sums () =
  let r1 =
    fake_report ~runs:10 ~restarts:1 ~steps:100 ~paths:5 ~stats:(stats ~queries:7 ~sat:3) ()
  in
  let r2 =
    fake_report ~runs:4 ~restarts:2 ~steps:50 ~paths:2 ~all_linear:false
      ~stats:(stats ~queries:5 ~sat:1) ()
  in
  let m = Dart.Parallel.merge [ r1; r2 ] in
  Alcotest.(check int) "runs summed" 14 m.Dart.Driver.runs;
  Alcotest.(check int) "restarts summed" 3 m.Dart.Driver.restarts;
  Alcotest.(check int) "steps summed" 150 m.Dart.Driver.total_steps;
  Alcotest.(check int) "paths summed" 7 m.Dart.Driver.paths_explored;
  Alcotest.(check int) "queries summed" 12 (Solver.queries m.Dart.Driver.solver_stats);
  Alcotest.(check int) "sat summed" 4 (Solver.sat_count m.Dart.Driver.solver_stats);
  Alcotest.(check bool) "all_linear conjoined" false m.Dart.Driver.all_linear;
  Alcotest.(check bool) "all_locs_definite conjoined" true m.Dart.Driver.all_locs_definite

let test_merge_verdict () =
  let budget = fake_report ~verdict:Dart.Driver.Budget_exhausted () in
  let complete = fake_report ~verdict:Dart.Driver.Complete () in
  let check name expected reports =
    let m = Dart.Parallel.merge reports in
    let got =
      match m.Dart.Driver.verdict with
      | Dart.Driver.Bug_found _ -> "bug"
      | Dart.Driver.Complete -> "complete"
      | Dart.Driver.Budget_exhausted -> "budget"
      | Dart.Driver.Time_exhausted -> "time"
      | Dart.Driver.Interrupted -> "interrupted"
    in
    Alcotest.(check string) name expected got
  in
  check "all budget" "budget" [ budget; budget ];
  check "one complete wins" "complete" [ budget; complete; budget ];
  check "bug wins" "bug"
    [ complete; fake_report ~bugs:[ bug "f" 0 ] () ];
  Alcotest.check_raises "empty merge rejected" (Invalid_argument "Parallel.merge: empty report list")
    (fun () -> ignore (Dart.Parallel.merge []))

(* ---- sharding helpers ----------------------------------------------------- *)

let test_budget_shares () =
  let shares = Dart.Parallel.budget_shares ~total:10 3 in
  Alcotest.(check (list int)) "remainder to first workers" [ 4; 3; 3 ]
    (Array.to_list shares);
  Alcotest.(check int) "sums to total" 10 (Array.fold_left ( + ) 0 shares);
  let shares = Dart.Parallel.budget_shares ~total:2 4 in
  Alcotest.(check int) "over-provisioned still sums" 2 (Array.fold_left ( + ) 0 shares)

let test_worker_seeds () =
  let s1 = Dart.Parallel.worker_seeds ~base_seed:42 4 in
  let s2 = Dart.Parallel.worker_seeds ~base_seed:42 4 in
  Alcotest.(check (list int)) "deterministic" (Array.to_list s1) (Array.to_list s2);
  Alcotest.(check int) "worker 0 inherits base seed" 42 s1.(0);
  let distinct = List.sort_uniq compare (Array.to_list s1) in
  Alcotest.(check int) "all distinct" 4 (List.length distinct)

(* ---- determinism contract -------------------------------------------------- *)

let norm (r : Dart.Driver.report) =
  ( r.Dart.Driver.verdict,
    r.Dart.Driver.runs,
    r.Dart.Driver.restarts,
    r.Dart.Driver.total_steps,
    r.Dart.Driver.paths_explored,
    List.sort compare r.Dart.Driver.coverage_sites,
    r.Dart.Driver.bugs )

let prepare_workload (src, toplevel) ~depth =
  Dart.Driver.prepare ~toplevel ~depth (Minic.Parser.parse_program src)

let test_jobs1_equals_sequential () =
  (* Two seed workloads: one buggy, one that terminates Complete. *)
  List.iter
    (fun (workload, depth) ->
      let prog = prepare_workload workload ~depth in
      let base = Dart.Driver.Options.make ~depth () in
      let seq = Dart.Driver.run ~options:base prog in
      let par = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:1 base) prog in
      Alcotest.(check int) "one worker" 1 par.Dart.Parallel.jobs;
      Alcotest.(check bool) "report identical to Driver.run" true
        (norm seq = norm par.Dart.Parallel.merged))
    [ (Workloads.Paper_examples.ac_controller, 2); (Workloads.Paper_examples.section_2_4, 1) ]

let bug_keys (r : Dart.Driver.report) =
  List.sort_uniq compare (List.map Dart.Driver.bug_key r.Dart.Driver.bugs)

let test_jobs4_same_bug_set () =
  List.iter
    (fun (workload, depth) ->
      let prog = prepare_workload workload ~depth in
      let base = Dart.Driver.Options.make ~depth ~max_runs:2_000 () in
      let r1 = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:1 base) prog in
      let r4 = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:4 base) prog in
      let tag (r : Dart.Parallel.report) =
        match r.Dart.Parallel.merged.Dart.Driver.verdict with
        | Dart.Driver.Bug_found _ -> "bug"
        | Dart.Driver.Complete -> "complete"
        | Dart.Driver.Budget_exhausted -> "budget"
        | Dart.Driver.Time_exhausted -> "time"
        | Dart.Driver.Interrupted -> "interrupted"
      in
      Alcotest.(check string) "same verdict" (tag r1) (tag r4);
      Alcotest.(check bool) "same deduped bug set" true
        (bug_keys r1.Dart.Parallel.merged = bug_keys r4.Dart.Parallel.merged))
    [ (Workloads.Paper_examples.section_2_1, 1); (Workloads.Paper_examples.section_2_4, 1);
      (Workloads.Paper_examples.ac_controller, 2);
      ((Workloads.Sip_parser.vulnerable, Workloads.Sip_parser.toplevel), 1) ]

let test_shared_store_ablation () =
  (* The shared cross-worker store and pooled budget are accelerations,
     not search changes: at jobs=4 the deduped bug set and verdict must
     match the --no-shared-cache run (private caches, budget shards),
     and with sharing on at least some hits should come from peers. *)
  let prog = prepare_workload Workloads.Paper_examples.ac_controller ~depth:2 in
  let opts ~use_shared_cache =
    Dart.Driver.Options.make ~depth:2 ~max_runs:2_000 ~stop_on_first_bug:false
      ~use_shared_cache ()
  in
  let on =
    Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:4 (opts ~use_shared_cache:true))
      prog
  in
  let off =
    Dart.Parallel.run
      ~options:(Dart.Parallel.options ~jobs:4 (opts ~use_shared_cache:false))
      prog
  in
  Alcotest.(check bool) "same deduped bug set" true
    (bug_keys on.Dart.Parallel.merged = bug_keys off.Dart.Parallel.merged);
  Alcotest.(check bool) "same coverage" true
    (List.sort compare on.Dart.Parallel.merged.Dart.Driver.coverage_sites
    = List.sort compare off.Dart.Parallel.merged.Dart.Driver.coverage_sites);
  Alcotest.(check int) "ablated run has no shared hits" 0
    (Solver.shared_hits off.Dart.Parallel.merged.Dart.Driver.solver_stats);
  (* jobs=1 never builds a store, whatever the flag says. *)
  let seq =
    Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:1 (opts ~use_shared_cache:true))
      prog
  in
  Alcotest.(check int) "jobs=1: no shared hits" 0
    (Solver.shared_hits seq.Dart.Parallel.merged.Dart.Driver.solver_stats)

let test_portfolio_strategies () =
  let prog = prepare_workload Workloads.Paper_examples.section_2_4 ~depth:1 in
  let base = Dart.Driver.Options.make ~max_runs:400 () in
  let portfolio = [ Dart.Strategy.Dfs; Dart.Strategy.Random_branch; Dart.Strategy.Bfs ] in
  let r = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs:3 ~portfolio base) prog in
  Alcotest.(check (list string)) "portfolio cycled"
    [ "dfs"; "random-branch"; "bfs" ]
    (List.map
       (fun w -> Dart.Strategy.to_string w.Dart.Parallel.w_strategy)
       r.Dart.Parallel.workers);
  (* The DFS worker proves completeness for the whole space. *)
  Alcotest.(check bool) "merged verdict complete" true
    (r.Dart.Parallel.merged.Dart.Driver.verdict = Dart.Driver.Complete)

(* ---- strategy candidate set ------------------------------------------------ *)

let test_candidates_dfs () =
  let rng = Dart_util.Prng.create 1 in
  let c = Strategy.candidates_of_list [ 0; 2; 5; 9 ] in
  Alcotest.(check (option int)) "deepest first" (Some 9) (Strategy.choose Strategy.Dfs rng c);
  Strategy.remove_failed Strategy.Dfs c;
  Alcotest.(check (option int)) "then next deepest" (Some 5)
    (Strategy.choose Strategy.Dfs rng c);
  Strategy.remove_failed Strategy.Dfs c;
  ignore (Strategy.choose Strategy.Dfs rng c);
  Strategy.remove_failed Strategy.Dfs c;
  Alcotest.(check (option int)) "down to the shallowest" (Some 0)
    (Strategy.choose Strategy.Dfs rng c);
  Strategy.remove_failed Strategy.Dfs c;
  Alcotest.(check (option int)) "exhausted" None (Strategy.choose Strategy.Dfs rng c)

let test_candidates_bfs () =
  let rng = Dart_util.Prng.create 1 in
  let c = Strategy.candidates_of_list [ 1; 4; 6 ] in
  Alcotest.(check (option int)) "shallowest first" (Some 1)
    (Strategy.choose Strategy.Bfs rng c);
  Strategy.remove_failed Strategy.Bfs c;
  Alcotest.(check (option int)) "then next" (Some 4) (Strategy.choose Strategy.Bfs rng c);
  Alcotest.(check int) "two left" 2 (Strategy.cardinal c)

let test_candidates_random () =
  let rng = Dart_util.Prng.create 7 in
  let c = Strategy.candidates_of_list [ 3; 8; 11; 20 ] in
  let seen = ref [] in
  let rec drain () =
    match Strategy.choose Strategy.Random_branch rng c with
    | None -> ()
    | Some j ->
      seen := j :: !seen;
      Strategy.remove_failed Strategy.Random_branch c;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "every candidate drained exactly once" [ 3; 8; 11; 20 ]
    (List.sort compare !seen)

let test_candidates_empty_remove () =
  let rng = Dart_util.Prng.create 1 in
  let c = Strategy.candidates_of_list [] in
  Alcotest.(check (option int)) "empty set" None (Strategy.choose Strategy.Dfs rng c);
  Alcotest.check_raises "remove without choose"
    (Invalid_argument "Strategy.remove_failed: no preceding choose") (fun () ->
      Strategy.remove_failed Strategy.Dfs c)

(* ---- random search budget boundary ----------------------------------------- *)

let test_random_budget_boundary () =
  (* No findable bug: the budget must be exactly consumed, not
     max_runs - 1 or max_runs + 1. *)
  let src = "void f(int x) { if (x == 123456789) abort(); }" in
  let prog = prepare_workload (src, "f") ~depth:1 in
  let r = Dart.Random_search.run ~seed:3 ~max_runs:17 prog in
  Alcotest.(check bool) "no bug" true (r.Dart.Random_search.verdict = `No_bug);
  Alcotest.(check int) "runs = max_runs exactly" 17 r.Dart.Random_search.runs;
  (* A bug on the very first run: the boundary run still counts. *)
  let prog = prepare_workload ("void g(int x) { abort(); }", "g") ~depth:1 in
  let r = Dart.Random_search.run ~seed:3 ~max_runs:1 prog in
  (match r.Dart.Random_search.verdict with
   | `Bug_found b -> Alcotest.(check int) "found on run 1" 1 b.Dart.Driver.bug_run
   | `No_bug | `Time_exhausted | `Interrupted ->
     Alcotest.fail "expected the unconditional abort");
  Alcotest.(check int) "runs = 1" 1 r.Dart.Random_search.runs

let suite =
  [ Alcotest.test_case "merge: bug dedup" `Quick test_merge_bug_dedup;
    Alcotest.test_case "merge: coverage union" `Quick test_merge_coverage_union;
    Alcotest.test_case "merge: counter sums" `Quick test_merge_counter_sums;
    Alcotest.test_case "merge: verdict rules" `Quick test_merge_verdict;
    Alcotest.test_case "budget shares" `Quick test_budget_shares;
    Alcotest.test_case "worker seeds" `Quick test_worker_seeds;
    Alcotest.test_case "jobs=1 = sequential" `Quick test_jobs1_equals_sequential;
    Alcotest.test_case "jobs=4 same bug set" `Quick test_jobs4_same_bug_set;
    Alcotest.test_case "shared store ablation" `Quick test_shared_store_ablation;
    Alcotest.test_case "portfolio strategies" `Quick test_portfolio_strategies;
    Alcotest.test_case "candidates: dfs" `Quick test_candidates_dfs;
    Alcotest.test_case "candidates: bfs" `Quick test_candidates_bfs;
    Alcotest.test_case "candidates: random" `Quick test_candidates_random;
    Alcotest.test_case "candidates: edge cases" `Quick test_candidates_empty_remove;
    Alcotest.test_case "random budget boundary" `Quick test_random_budget_boundary ]
