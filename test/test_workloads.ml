(* The paper's evaluation workloads: Needham-Schroeder under both
   intruder models and fix levels, and the oSIP simulacrum. These are
   the same configurations the bench harness sweeps; here they run with
   reduced budgets as integration tests. *)

let options ?(depth = 1) ?(max_runs = 50_000) () =
  Dart.Driver.Options.make ~depth ~max_runs ()

let ns_poss ~fix ~depth ~max_runs =
  Dart.Driver.test_source
    ~options:(options ~depth ~max_runs ())
    ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel
    (Workloads.Needham_schroeder.possibilistic ~fix)

let ns_dy ~fix ~depth ~max_runs =
  Dart.Driver.test_source
    ~options:(options ~depth ~max_runs ())
    ~toplevel:Workloads.Needham_schroeder.dolev_yao_toplevel
    (Workloads.Needham_schroeder.dolev_yao ~fix)

let is_bug (r : Dart.Driver.report) =
  match r.Dart.Driver.verdict with Dart.Driver.Bug_found _ -> true | _ -> false

let is_complete (r : Dart.Driver.report) =
  match r.Dart.Driver.verdict with Dart.Driver.Complete -> true | _ -> false

let test_ns_possibilistic_depth1 () =
  let r = ns_poss ~fix:`None ~depth:1 ~max_runs:5_000 in
  Alcotest.(check bool) "complete" true (is_complete r);
  Alcotest.(check bool) "no bug" true (not (is_bug r))

let test_ns_possibilistic_depth2 () =
  let r = ns_poss ~fix:`None ~depth:2 ~max_runs:20_000 in
  Alcotest.(check bool) "attack found" true (is_bug r)

let test_ns_possibilistic_random_fails () =
  let ast =
    Minic.Parser.parse_program (Workloads.Needham_schroeder.possibilistic ~fix:`None)
  in
  let prog =
    Dart.Driver.prepare ~toplevel:Workloads.Needham_schroeder.possibilistic_toplevel
      ~depth:2 ast
  in
  let r = Dart.Random_search.run ~seed:17 ~max_runs:3_000 prog in
  Alcotest.(check bool) "random cannot guess nonces" true
    (r.Dart.Random_search.verdict = `No_bug)

let test_ns_dolev_yao_depths () =
  (* Figure 10's shape: no error up to depth 3, error at depth 4, run
     counts growing with depth. *)
  let r1 = ns_dy ~fix:`None ~depth:1 ~max_runs:5_000 in
  let r2 = ns_dy ~fix:`None ~depth:2 ~max_runs:5_000 in
  let r3 = ns_dy ~fix:`None ~depth:3 ~max_runs:20_000 in
  Alcotest.(check bool) "depth1 complete, no bug" true (is_complete r1);
  Alcotest.(check bool) "depth2 complete, no bug" true (is_complete r2);
  Alcotest.(check bool) "depth3 complete, no bug" true (is_complete r3);
  Alcotest.(check bool) "growth 1->2" true (r2.Dart.Driver.runs > r1.Dart.Driver.runs);
  Alcotest.(check bool) "growth 2->3" true (r3.Dart.Driver.runs > r2.Dart.Driver.runs)

let test_ns_dolev_yao_attack_depth4 () =
  let r = ns_dy ~fix:`None ~depth:4 ~max_runs:100_000 in
  Alcotest.(check bool) "Lowe's attack found" true (is_bug r)

let test_ns_lowe_fix_story () =
  (* §4.2's anecdote: the incomplete fix is still attackable; the
     corrected fix closes the protocol. *)
  let buggy = ns_dy ~fix:`Buggy ~depth:4 ~max_runs:100_000 in
  Alcotest.(check bool) "buggy fix still attackable" true (is_bug buggy);
  let fixed = ns_dy ~fix:`Correct ~depth:4 ~max_runs:100_000 in
  Alcotest.(check bool) "correct fix closes it" true (is_complete fixed)

let test_osip_sweep_small () =
  let src, funcs = Workloads.Osip_sim.generate ~seed:3 ~n:25 in
  let crashed, missed_vuln, false_crash =
    List.fold_left
      (fun (c, mv, fc) (f : Workloads.Osip_sim.gen_func) ->
        let r =
          Dart.Driver.test_source
            ~options:(options ~depth:1 ~max_runs:400 ())
            ~toplevel:f.gf_toplevel src
        in
        let bug = is_bug r in
        ( (if bug then c + 1 else c),
          (if f.gf_vulnerable && not bug then mv + 1 else mv),
          if (not f.gf_vulnerable) && bug then fc + 1 else fc ))
      (0, 0, 0) funcs
  in
  Alcotest.(check int) "no false crashes" 0 false_crash;
  Alcotest.(check int) "no missed vulnerable function" 0 missed_vuln;
  Alcotest.(check bool) "crash rate in the paper's region" true
    (let rate = float_of_int crashed /. float_of_int (List.length funcs) in
     rate > 0.4 && rate < 0.9)

let test_osip_generator_determinism () =
  let s1, f1 = Workloads.Osip_sim.generate ~seed:12 ~n:30 in
  let s2, f2 = Workloads.Osip_sim.generate ~seed:12 ~n:30 in
  Alcotest.(check string) "same source" s1 s2;
  Alcotest.(check int) "same count" (List.length f1) (List.length f2);
  let s3, _ = Workloads.Osip_sim.generate ~seed:13 ~n:30 in
  Alcotest.(check bool) "seed changes output" true (s1 <> s3)

let test_osip_generated_compiles () =
  let src, funcs = Workloads.Osip_sim.generate ~seed:99 ~n:120 in
  (* Whole library typechecks and lowers with any toplevel. *)
  let ast = Minic.Parser.parse_program src in
  let first = List.hd funcs in
  ignore (Dart.Driver.prepare ~toplevel:first.Workloads.Osip_sim.gf_toplevel ~depth:1 ast)

let test_osip_parser_attack () =
  let r =
    Dart.Driver.test_source
      ~options:(options ~depth:1 ~max_runs:2_000 ())
      ~toplevel:Workloads.Osip_sim.parser_toplevel Workloads.Osip_sim.parser_vulnerable
  in
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Bug_found b ->
     (* The attack is externally controllable: content_length is the
        only non-char input; the crash requires it out of safe range. *)
     let len = List.assoc 0 b.Dart.Driver.bug_inputs in
     Alcotest.(check bool) "attack length out of validated range" true
       (len < 0 || len > 4096)
   | _ -> Alcotest.fail "parser attack not found");
  let r =
    Dart.Driver.test_source
      ~options:(options ~depth:1 ~max_runs:2_000 ())
      ~toplevel:Workloads.Osip_sim.parser_toplevel Workloads.Osip_sim.parser_fixed
  in
  Alcotest.(check bool) "fixed parser survives" true (not (is_bug r))

let test_libc_prelude () =
  (* The prelude functions behave like their C counterparts. *)
  let src =
    Workloads.Libc_prelude.with_prelude
      {|
int result = 0;
void check() {
  char buf[8];
  mc_strcpy(buf, "abc");
  if (mc_strlen(buf) != 3) return;
  if (mc_strcmp(buf, "abc") != 0) return;
  if (mc_strcmp(buf, "abd") >= 0) return;
  if (mc_strncmp(buf, "abX", 2) != 0) return;
  if (mc_strchr(buf, 'c') != 2) return;
  if (mc_strchr(buf, 'z') != -1) return;
  if (mc_atoi("1234") != 1234) return;
  if (mc_atoi("x") != -1) return;
  if (mc_isdigit('5') == 0) return;
  if (mc_isalpha('5') != 0) return;
  mc_memset(buf, 'z', 3);
  if (buf[0] != 'z' || buf[2] != 'z') return;
  result = 1;
}
|}
  in
  let prog = Ram.Lower.lower_source src in
  let m = Machine.load prog in
  (match Machine.run ~args:[] m ~entry:"check" with
   | Machine.Halted -> ()
   | Machine.Faulted (f, _) -> Alcotest.failf "prelude faulted: %s" (Machine.fault_to_string f));
  (match Machine.read_word m (Machine.global_addr m "result") with
   | Ok 1 -> ()
   | Ok v -> Alcotest.failf "prelude checks failed (result=%d)" v
   | Error _ -> Alcotest.fail "no result")

let test_sip_packet_construction () =
  (* DART must synthesize "INVITE <big-id>" through the string
     routines; random testing with the same budget must not. *)
  let r =
    Dart.Driver.test_source
      ~options:(options ~depth:1 ~max_runs:50_000 ())
      ~toplevel:Workloads.Sip_parser.toplevel Workloads.Sip_parser.vulnerable
  in
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Bug_found bug ->
     (* The witness really spells a valid method token. *)
     let char_at i = Option.value ~default:0 (List.assoc_opt i bug.Dart.Driver.bug_inputs) in
     let prefix = String.init 7 (fun i -> Char.chr (char_at i land 255)) in
     Alcotest.(check string) "method token synthesized" "INVITE " prefix
   | _ -> Alcotest.fail "packet not constructed");
  let rr =
    Dart.Random_search.test_source ~seed:9 ~max_runs:10_000
      ~toplevel:Workloads.Sip_parser.toplevel Workloads.Sip_parser.vulnerable
  in
  Alcotest.(check bool) "random cannot pass the filter" true
    (rr.Dart.Random_search.verdict = `No_bug);
  let rf =
    Dart.Driver.test_source
      ~options:(options ~depth:1 ~max_runs:2_000 ())
      ~toplevel:Workloads.Sip_parser.toplevel Workloads.Sip_parser.fixed
  in
  Alcotest.(check bool) "fixed parser has no OOB" true (not (is_bug rf))

let suite =
  [ Alcotest.test_case "NS possibilistic depth 1" `Quick test_ns_possibilistic_depth1;
    Alcotest.test_case "NS possibilistic depth 2" `Quick test_ns_possibilistic_depth2;
    Alcotest.test_case "NS possibilistic random fails" `Quick test_ns_possibilistic_random_fails;
    Alcotest.test_case "NS Dolev-Yao depths 1-3" `Slow test_ns_dolev_yao_depths;
    Alcotest.test_case "NS Dolev-Yao attack depth 4" `Slow test_ns_dolev_yao_attack_depth4;
    Alcotest.test_case "NS Lowe fix story" `Slow test_ns_lowe_fix_story;
    Alcotest.test_case "oSIP sweep" `Slow test_osip_sweep_small;
    Alcotest.test_case "oSIP generator determinism" `Quick test_osip_generator_determinism;
    Alcotest.test_case "oSIP library compiles" `Quick test_osip_generated_compiles;
    Alcotest.test_case "oSIP parser attack" `Quick test_osip_parser_attack;
    Alcotest.test_case "libc prelude" `Quick test_libc_prelude;
    Alcotest.test_case "SIP packet construction" `Quick test_sip_packet_construction ]
