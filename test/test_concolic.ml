(* The concolic executor: symbolic tracking across assignments, calls
   and returns; path constraints; prediction checking; completeness
   flags; random initialization of every C type. *)

open Symbolic

let run_first src ~toplevel ?(opts = Dart.Concolic.default_exec_options) ?(seed = 42) () =
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel ~depth:1 ast in
  let rng = Dart_util.Prng.create seed in
  let im = Dart.Inputs.create () in
  let data =
    Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:[||]
      ~entry:Dart.Driver_gen.wrapper_name prog
  in
  (data, im)

let constraint_strings (data : Dart.Concolic.run_data) =
  Array.to_list data.Dart.Concolic.path_constraint
  |> List.filter_map (Option.map Constr.to_string)

let test_pc_stack_parallel () =
  let data, _ = run_first "void f(int x) { if (x == 3) { } if (x > 5) { } }" ~toplevel:"f" () in
  Alcotest.(check int) "stack length = pc length"
    (Array.length data.Dart.Concolic.stack)
    (Array.length data.Dart.Concolic.path_constraint);
  Alcotest.(check int) "k matches" data.Dart.Concolic.conditionals
    (Array.length data.Dart.Concolic.stack)

let test_symbolic_conditions_collected () =
  let data, _ = run_first "void f(int x) { if (x == 3) { } }" ~toplevel:"f" () in
  (* Among the conditionals (driver loop + program), exactly one has a
     symbolic constraint: x == 3 (or its negation). *)
  Alcotest.(check int) "one symbolic constraint" 1 (List.length (constraint_strings data))

let test_interprocedural_tracking () =
  (* The f(x) == x+10 pattern from §2.1: the constraint must mention
     2*x, i.e. symbolic values flow through the call and the return. *)
  let data, _ =
    run_first "int dbl(int x) { return 2 * x; } void f(int x) { if (dbl(x) == x + 10) { } }"
      ~toplevel:"f" ()
  in
  match constraint_strings data with
  | [ s ] ->
    (* The normalized constraint is (2x) - (x+10) rel 0 = x - 10 rel 0. *)
    Alcotest.(check bool) ("mentions x: " ^ s) true (Str_contains.contains s "x")
  | l -> Alcotest.failf "expected one constraint, got %d" (List.length l)

let test_nonlinear_fallback () =
  let data, _ = run_first "void f(int x, int y) { if (x * y == 12) { } }" ~toplevel:"f" () in
  Alcotest.(check bool) "all_linear cleared" false data.Dart.Concolic.all_linear;
  Alcotest.(check int) "no constraint for nonlinear branch" 0
    (List.length (constraint_strings data))

let test_linear_multiplication_kept () =
  let data, _ = run_first "void f(int x) { if (3 * x == 12) { } }" ~toplevel:"f" () in
  Alcotest.(check bool) "const*x stays linear" true data.Dart.Concolic.all_linear;
  Alcotest.(check int) "constraint collected" 1 (List.length (constraint_strings data))

let test_division_fallback () =
  let data, _ = run_first "void f(int x) { if (x / 2 == 3) { } }" ~toplevel:"f" () in
  Alcotest.(check bool) "division clears all_linear" false data.Dart.Concolic.all_linear

let test_shift_linear () =
  let data, _ = run_first "void f(int x) { if (x << 2 == 12) { } }" ~toplevel:"f" () in
  Alcotest.(check bool) "x << const stays linear" true data.Dart.Concolic.all_linear;
  Alcotest.(check int) "constraint collected" 1 (List.length (constraint_strings data))

let test_bitnot_linear () =
  let data, _ = run_first "void f(int x) { if (~x == -4) { } }" ~toplevel:"f" () in
  Alcotest.(check bool) "bitnot stays linear" true data.Dart.Concolic.all_linear;
  Alcotest.(check int) "constraint collected" 1 (List.length (constraint_strings data))

let test_symbolic_deref_fallback () =
  (* Dereference through an input-dependent address: all_locs_definite
     is cleared (paper Figure 1). The guarded index needs the directed
     search to be reached, so run the full driver and inspect the
     aggregated flags. *)
  let report =
    Dart.Driver.test_source
      ~options:(Dart.Driver.Options.make ~max_runs:50 ())
      ~toplevel:"f"
      "int g[10]; void f(int i) { if (i >= 0) { if (i < 10) { int v = g[i]; } } }"
  in
  Alcotest.(check bool) "all_locs_definite cleared" false report.Dart.Driver.all_locs_definite

let test_pointer_coin_flag () =
  let data, _ =
    run_first "struct s { int a; }; void f(struct s *p) { }" ~toplevel:"f" ()
  in
  Alcotest.(check bool) "pointer input voids completeness" false
    data.Dart.Concolic.all_locs_definite;
  let data, _ = run_first "void f(int x) { }" ~toplevel:"f" () in
  Alcotest.(check bool) "scalar-only program keeps it" true
    data.Dart.Concolic.all_locs_definite

let test_self_referential_store () =
  (* h = h->next must evaluate its source against pre-store memory; a
     regression here crashes immediately (this was a real bug found
     during bring-up). *)
  let src =
    {|
struct cell { int v; struct cell *next; };
int len(struct cell *h) {
  int n = 0;
  while (h != NULL) { n = n + 1; h = h->next; }
  return n;
}
|}
  in
  for seed = 0 to 30 do
    let data, _ = run_first src ~toplevel:"len" ~seed () in
    match data.Dart.Concolic.outcome with
    | Dart.Concolic.Run_fault (f, _) ->
      Alcotest.failf "walker crashed (seed %d): %s" seed (Machine.fault_to_string f)
    | Dart.Concolic.Run_halted | Dart.Concolic.Run_prediction_failure -> ()
  done

let test_library_clears_linear () =
  let src = "int lib_hash(int x);\nvoid f(int x) { if (lib_hash(x) == 7) { } }" in
  let ast = Minic.Parser.parse_program src in
  let prog =
    Dart.Driver.prepare ~library_sigs:[ Workloads.Paper_examples.lib_hash_sig ] ~toplevel:"f"
      ~depth:1 ast
  in
  let opts =
    { Dart.Concolic.default_exec_options with
      library = [ ("lib_hash", Workloads.Paper_examples.lib_hash_impl) ] }
  in
  let data =
    Dart.Concolic.run_once ~opts ~rng:(Dart_util.Prng.create 1) ~im:(Dart.Inputs.create ())
      ~prev_stack:[||] ~entry:Dart.Driver_gen.wrapper_name prog
  in
  Alcotest.(check bool) "library on symbolic arg clears all_linear" false
    data.Dart.Concolic.all_linear

let test_inputs_persist_and_replay () =
  (* Same IM => same path: stack of run 2 must equal stack of run 1
     when predictions are passed back. *)
  let src = "void f(int x) { if (x > 100) { if (x > 1000) { } } }" in
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel:"f" ~depth:1 ast in
  let rng = Dart_util.Prng.create 9 in
  let im = Dart.Inputs.create () in
  let opts = Dart.Concolic.default_exec_options in
  let entry = Dart.Driver_gen.wrapper_name in
  let d1 = Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:[||] ~entry prog in
  (* Replay with the full stack as prediction: all must match. *)
  let d2 = Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:d1.Dart.Concolic.stack ~entry prog in
  Alcotest.(check bool) "no prediction failure" true
    (d2.Dart.Concolic.outcome <> Dart.Concolic.Run_prediction_failure);
  Alcotest.(check int) "same number of conditionals" d1.Dart.Concolic.conditionals
    d2.Dart.Concolic.conditionals

let test_prediction_failure_detected () =
  (* Forge a wrong prediction: flip the branch without changing inputs. *)
  let src = "void f(int x) { if (x > 100) { } }" in
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel:"f" ~depth:1 ast in
  let rng = Dart_util.Prng.create 9 in
  let im = Dart.Inputs.create () in
  let opts = Dart.Concolic.default_exec_options in
  let entry = Dart.Driver_gen.wrapper_name in
  let d1 = Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:[||] ~entry prog in
  let forged =
    Array.map
      (fun (r : Dart.Concolic.branch_record) ->
        { r with Dart.Concolic.br_branch = not r.Dart.Concolic.br_branch })
      d1.Dart.Concolic.stack
  in
  let d2 = Dart.Concolic.run_once ~opts ~rng ~im ~prev_stack:forged ~entry prog in
  Alcotest.(check bool) "prediction failure" true
    (d2.Dart.Concolic.outcome = Dart.Concolic.Run_prediction_failure)

let test_randinit_types () =
  (* Structs, nested arrays, chars and pointers all get initialized:
     the program reads every field and must not hit uninitialized
     memory. *)
  let src =
    {|
struct inner { char tag; int data[3]; };
struct outer { int id; struct inner in; struct outer *next; };
int consume(struct outer *o) {
  int acc = 0;
  while (o != NULL) {
    acc = acc + o->id + o->in.tag + o->in.data[0] + o->in.data[1] + o->in.data[2];
    o = o->next;
  }
  return acc;
}
|}
  in
  for seed = 0 to 30 do
    let data, _ = run_first src ~toplevel:"consume" ~seed () in
    match data.Dart.Concolic.outcome with
    | Dart.Concolic.Run_fault (f, _) ->
      Alcotest.failf "randinit left a hole (seed %d): %s" seed (Machine.fault_to_string f)
    | Dart.Concolic.Run_halted | Dart.Concolic.Run_prediction_failure -> ()
  done

let test_char_inputs_in_range () =
  let _, im = run_first "char env_char(); void f(int n) { char c = env_char(); }" ~toplevel:"f" () in
  List.iter
    (fun (id, v) ->
      match Dart.Inputs.kind_of im id with
      | Some Dart.Inputs.Kchar ->
        if v < 0 || v > 255 then Alcotest.failf "char input out of range: %d" v
      | Some Dart.Inputs.Kcoin ->
        if v <> 0 && v <> 1 then Alcotest.failf "coin out of range: %d" v
      | Some Dart.Inputs.Kint | None -> ())
    (Dart.Inputs.to_alist im)

let test_symbolic_pointers_extension () =
  (* With the extension on, the NULL/non-NULL coin becomes a stack
     entry with a constraint the search can flip. *)
  let opts = { Dart.Concolic.default_exec_options with symbolic_pointers = true } in
  let data, _ =
    run_first "struct s { int a; }; void f(struct s *p) { }" ~toplevel:"f" ~opts ()
  in
  Alcotest.(check bool) "coin branch recorded" true
    (List.length (constraint_strings data) >= 1)

let test_external_pointer_function () =
  (* An external function returning a pointer: Figure 8's rules build a
     NULL or a fresh recursively-initialized object at call time. *)
  let src = {|
struct node { int v; struct node *next; };
struct node *get_node();
int use(int k) {
  struct node *n = get_node();
  int sum = 0;
  while (n != NULL) {
    sum = sum + n->v;
    n = n->next;
  }
  return sum;
}
|} in
  for seed = 0 to 20 do
    let data, _ = run_first src ~toplevel:"use" ~seed () in
    match data.Dart.Concolic.outcome with
    | Dart.Concolic.Run_fault (f, _) ->
      Alcotest.failf "external pointer init broke (seed %d): %s" seed
        (Machine.fault_to_string f)
    | Dart.Concolic.Run_halted | Dart.Concolic.Run_prediction_failure -> ()
  done

let test_depth_input_ordering () =
  (* With depth 2, the second call's argument is a distinct input. *)
  let src = "void f(int x) { if (x == 5) { } }" in
  let ast = Minic.Parser.parse_program src in
  let prog = Dart.Driver.prepare ~toplevel:"f" ~depth:2 ast in
  let im = Dart.Inputs.create () in
  let data =
    Dart.Concolic.run_once ~opts:Dart.Concolic.default_exec_options
      ~rng:(Dart_util.Prng.create 3) ~im ~prev_stack:[||]
      ~entry:Dart.Driver_gen.wrapper_name prog
  in
  ignore data;
  Alcotest.(check int) "two inputs consumed" 2 (List.length (Dart.Inputs.to_alist im))

let test_external_variables_initialized () =
  let data, _ =
    run_first "extern int config; void f(int x) { if (config == 5) { } }" ~toplevel:"f" ()
  in
  (match data.Dart.Concolic.outcome with
   | Dart.Concolic.Run_fault (f, _) ->
     Alcotest.failf "extern read faulted: %s" (Machine.fault_to_string f)
   | _ -> ());
  (* config is an input: the branch on it must carry a constraint. *)
  Alcotest.(check int) "constraint on extern var" 1 (List.length (constraint_strings data))

let suite =
  [ Alcotest.test_case "pc/stack parallel" `Quick test_pc_stack_parallel;
    Alcotest.test_case "symbolic conditions" `Quick test_symbolic_conditions_collected;
    Alcotest.test_case "interprocedural tracking" `Quick test_interprocedural_tracking;
    Alcotest.test_case "nonlinear fallback" `Quick test_nonlinear_fallback;
    Alcotest.test_case "const multiplication linear" `Quick test_linear_multiplication_kept;
    Alcotest.test_case "division fallback" `Quick test_division_fallback;
    Alcotest.test_case "shift by const linear" `Quick test_shift_linear;
    Alcotest.test_case "bitnot linear" `Quick test_bitnot_linear;
    Alcotest.test_case "symbolic deref fallback" `Quick test_symbolic_deref_fallback;
    Alcotest.test_case "pointer coin flag" `Quick test_pointer_coin_flag;
    Alcotest.test_case "self-referential store" `Quick test_self_referential_store;
    Alcotest.test_case "library clears all_linear" `Quick test_library_clears_linear;
    Alcotest.test_case "replay stability" `Quick test_inputs_persist_and_replay;
    Alcotest.test_case "prediction failure" `Quick test_prediction_failure_detected;
    Alcotest.test_case "randinit covers all types" `Quick test_randinit_types;
    Alcotest.test_case "input ranges by kind" `Quick test_char_inputs_in_range;
    Alcotest.test_case "symbolic pointers extension" `Quick test_symbolic_pointers_extension;
    Alcotest.test_case "external pointer function" `Quick test_external_pointer_function;
    Alcotest.test_case "depth input ordering" `Quick test_depth_input_ordering;
    Alcotest.test_case "external variables" `Quick test_external_variables_initialized ]
