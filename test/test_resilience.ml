(* Resilient supervision: the fault-injection harness itself, deadline
   and interrupt verdicts, resource-limit classification, solver-Unknown
   degradation, checkpoint/resume determinism, and crash isolation in
   the parallel orchestrator. Every failure here is injected
   deterministically via Dart_util.Faultsim — no timing dependence. *)

module Faultsim = Dart_util.Faultsim

let prepare ?(depth = 1) (src, toplevel) =
  Dart.Driver.prepare ~toplevel ~depth (Minic.Parser.parse_program src)

(* A bugless workload with enough branches (and enough restarts, from
   its prediction failures under depth > 1) that a few hundred runs
   exercise the full run-boundary machinery without terminating. *)
let churn_src =
  ( "int acc;\n\
     void step(int a, int b, int c) {\n\
    \  if (a > b) { acc = acc + 1; } else { acc = acc - 1; }\n\
    \  if (b > c) { acc = acc + 2; } else { acc = acc - 2; }\n\
    \  if (c > a) { acc = acc + 3; } else { acc = acc - 3; }\n\
    \  if (a + b > c) { acc = acc + 4; } else { acc = acc - 4; }\n\
    \  if (b + c > a) { acc = acc + 5; } else { acc = acc - 5; }\n\
     }",
    "step" )

let abort_src = ("void f(int x) { if (x == 5) abort(); }", "f")

(* ---- faultsim -------------------------------------------------------------- *)

let test_faultsim_off () =
  Alcotest.(check bool) "off is off" false (Faultsim.is_on Faultsim.off);
  for _ = 1 to 3 do
    Alcotest.(check bool) "off never fires" false
      (Faultsim.fire Faultsim.off Faultsim.Solver_deadline)
  done

let test_faultsim_one_shot () =
  let fs = Faultsim.make [ (Faultsim.Solver_deadline, None, 3) ] in
  Alcotest.(check bool) "armed plan is on" true (Faultsim.is_on fs);
  let fired = List.init 5 (fun _ -> Faultsim.fire fs Faultsim.Solver_deadline) in
  Alcotest.(check (list bool)) "fires exactly on the 3rd occurrence, once"
    [ false; false; true; false; false ] fired

let test_faultsim_key_narrowing () =
  let fs = Faultsim.make [ (Faultsim.Worker_crash, Some 2, 1) ] in
  Alcotest.(check bool) "other key never fires" false
    (Faultsim.fire ~key:1 fs Faultsim.Worker_crash);
  Alcotest.(check bool) "other point never fires" false
    (Faultsim.fire ~key:2 fs Faultsim.Solver_deadline);
  Alcotest.(check bool) "matching key fires" true
    (Faultsim.fire ~key:2 fs Faultsim.Worker_crash);
  Alcotest.(check bool) "only once" false (Faultsim.fire ~key:2 fs Faultsim.Worker_crash)

let test_faultsim_spec () =
  (match Faultsim.of_spec "solver_deadline:2,worker_crash@1" with
   | Error e -> Alcotest.failf "spec rejected: %s" e
   | Ok fs ->
     Alcotest.(check bool) "first occurrence misses" false
       (Faultsim.fire fs Faultsim.Solver_deadline);
     Alcotest.(check bool) "second fires" true (Faultsim.fire fs Faultsim.Solver_deadline);
     Alcotest.(check bool) "worker rule defaults to nth=1" true
       (Faultsim.fire ~key:1 fs Faultsim.Worker_crash));
  (match Faultsim.of_spec "no_such_point" with
   | Ok _ -> Alcotest.fail "unknown point accepted"
   | Error _ -> ());
  (match Faultsim.of_spec "solver_deadline:0" with
   | Ok _ -> Alcotest.fail "nth=0 accepted"
   | Error _ -> ());
  (* [:?] draws the occurrence from the seed: equal seeds agree. *)
  let nth_fired seed =
    match Faultsim.of_spec ~seed "machine_step_limit:?" with
    | Error e -> Alcotest.failf "seeded spec rejected: %s" e
    | Ok fs ->
      let n = ref 0 in
      while not (Faultsim.fire fs Faultsim.Machine_step_limit) && !n < 100 do
        incr n
      done;
      !n
  in
  Alcotest.(check int) "seeded draw is deterministic" (nth_fired 11) (nth_fired 11);
  Alcotest.(check bool) "seeded draw is in 1..8" true (nth_fired 11 < 8)

(* ---- chaos schedules -------------------------------------------------------- *)

let fire_seq fs point n = List.init n (fun _ -> Faultsim.fire fs point)

let test_chaos_determinism () =
  let plan () = Faultsim.chaos ~seed:5 [ (Faultsim.Worker_crash, 2000) ] in
  let a = fire_seq (plan ()) Faultsim.Worker_crash 200 in
  Alcotest.(check (list bool)) "same seed, same schedule" a
    (fire_seq (plan ()) Faultsim.Worker_crash 200);
  Alcotest.(check bool) "different seed, different schedule" true
    (a <> fire_seq (Faultsim.chaos ~seed:6 [ (Faultsim.Worker_crash, 2000) ])
           Faultsim.Worker_crash 200);
  (* 20% of 200 draws: enough hits to be a schedule, not a constant. *)
  let hits = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "rate is roughly honoured" true (hits > 10 && hits < 90);
  (* Per-rule streams are seeded left to right from a master stream, so
     appending a rule never perturbs the schedules of the ones before
     it — a soak under worker_crash=r stays comparable when io_error is
     added next to it. *)
  let b =
    fire_seq
      (Faultsim.chaos ~seed:5 [ (Faultsim.Worker_crash, 2000); (Faultsim.Io_error, 9000) ])
      Faultsim.Worker_crash 200
  in
  Alcotest.(check (list bool)) "appended rule leaves the first stream intact" a b

let test_chaos_semantics () =
  (* Chaos rules ignore probe keys: every probe of the point is one
     Bernoulli draw, whichever slice or worker probes. *)
  let fs = Faultsim.chaos ~seed:1 [ (Faultsim.Io_error, 10000) ] in
  Alcotest.(check bool) "rate 1.0 fires unkeyed" true (Faultsim.fire fs Faultsim.Io_error);
  Alcotest.(check bool) "rate 1.0 fires keyed" true
    (Faultsim.fire ~key:7 fs Faultsim.Io_error);
  Alcotest.(check bool) "recurring, not one-shot" true
    (Faultsim.fire fs Faultsim.Io_error);
  Alcotest.(check bool) "other points untouched" false
    (Faultsim.fire fs Faultsim.Worker_crash);
  Alcotest.check_raises "rate 0 rejected"
    (Invalid_argument "Faultsim.chaos: rate must be in 1..10000 basis points") (fun () ->
      ignore (Faultsim.chaos [ (Faultsim.Io_error, 0) ]));
  Alcotest.check_raises "rate > 1 rejected"
    (Invalid_argument "Faultsim.chaos: rate must be in 1..10000 basis points") (fun () ->
      ignore (Faultsim.chaos [ (Faultsim.Io_error, 10001) ]))

let test_chaos_spec () =
  (match Faultsim.chaos_of_spec ~seed:3 "worker_crash=0.05, io_error=1" with
   | Error e -> Alcotest.failf "spec rejected: %s" e
   | Ok fs ->
     Alcotest.(check bool) "plan is on" true (Faultsim.is_on fs);
     Alcotest.(check bool) "rate-1 rule fires" true (Faultsim.fire fs Faultsim.Io_error));
  List.iter
    (fun (spec, what) ->
      match Faultsim.chaos_of_spec spec with
      | Ok _ -> Alcotest.failf "%s accepted: %S" what spec
      | Error _ -> ())
    [ ("", "empty spec");
      ("worker_crash", "missing rate");
      ("no_such_point=0.5", "unknown point");
      ("worker_crash=0", "zero rate");
      ("worker_crash=1.5", "rate above 1");
      ("worker_crash=-0.1", "negative rate");
      ("worker_crash=0.00001", "rate below one basis point");
      ("worker_crash=lots", "non-numeric rate") ]

(* ---- solver circuit breaker ------------------------------------------------- *)

let test_breaker_state_machine () =
  let b = Solver.Breaker.create ~threshold:3 ~cooldown:2 () in
  let site = ("f", 4) in
  Alcotest.(check bool) "closed: no skip" false (Solver.Breaker.skip b site);
  (* Structural (non-overrun) Unknowns never trip it, and they reset
     the consecutive count. *)
  Alcotest.(check bool) "ok outcome: no transition" true
    (Solver.Breaker.record b site ~failed:false = `None);
  Alcotest.(check bool) "1st failure" true (Solver.Breaker.record b site ~failed:true = `None);
  Alcotest.(check bool) "2nd failure" true (Solver.Breaker.record b site ~failed:true = `None);
  Alcotest.(check bool) "success resets the streak" true
    (Solver.Breaker.record b site ~failed:false = `None);
  Alcotest.(check bool) "streak restarts at 1" true
    (Solver.Breaker.record b site ~failed:true = `None);
  Alcotest.(check bool) "..2" true (Solver.Breaker.record b site ~failed:true = `None);
  Alcotest.(check bool) "3rd consecutive failure opens" true
    (Solver.Breaker.record b site ~failed:true = `Opened);
  Alcotest.(check bool) "open: skip" true (Solver.Breaker.skip b site);
  Alcotest.(check bool) "other sites unaffected" false (Solver.Breaker.skip b ("f", 9));
  Alcotest.(check bool) "straggler outcome while open is ignored" true
    (Solver.Breaker.record b site ~failed:true = `None);
  Solver.Breaker.tick b;
  Alcotest.(check bool) "still cooling after one tick" true (Solver.Breaker.skip b site);
  Solver.Breaker.tick b;
  Alcotest.(check bool) "half-open: the probe goes through" false
    (Solver.Breaker.skip b site);
  Alcotest.(check bool) "failed probe re-opens" true
    (Solver.Breaker.record b site ~failed:true = `Opened);
  Solver.Breaker.tick b;
  Solver.Breaker.tick b;
  Alcotest.(check bool) "successful probe closes" true
    (Solver.Breaker.record b site ~failed:false = `Closed);
  Alcotest.(check bool) "closed again: no skip" false (Solver.Breaker.skip b site);
  Alcotest.(check (list (pair string int))) "no site left open" []
    (Solver.Breaker.open_sites b);
  Alcotest.(check int) "two opens counted" 2 (Solver.Breaker.opens b);
  Alcotest.(check int) "two skips counted" 2 (Solver.Breaker.skips b)

(* A bugless one-branch target whose every solve is forced into a
   deadline overrun: the breaker must open at the site, short-circuit
   the follow-up restarts, and half-open probes on the restart ticks. *)
let test_breaker_under_forced_overruns () =
  let prog =
    prepare ("int hit;\nvoid g(int x) { if (x == 5) { hit = 1; } else { hit = 0; } }", "g")
  in
  let forced_overruns () =
    Faultsim.make (List.init 40 (fun i -> (Faultsim.Solver_deadline, None, i + 1)))
  in
  let run ~use_breaker =
    let options =
      Dart.Driver.Options.make ~seed:3 ~max_runs:12 ~stop_on_first_bug:false
        ~use_breaker ~faultsim:(forced_overruns ()) ()
    in
    Dart.Driver.run ~options prog
  in
  let br = run ~use_breaker:true and ablated = run ~use_breaker:false in
  let stats r = r.Dart.Driver.solver_stats in
  Alcotest.(check bool) "breaker opened" true (Solver.breaker_opens (stats br) >= 1);
  Alcotest.(check bool) "queries were short-circuited" true
    (Solver.breaker_skips (stats br) >= 1);
  Alcotest.(check int) "ablation: no opens" 0 (Solver.breaker_opens (stats ablated));
  Alcotest.(check int) "ablation: no skips" 0 (Solver.breaker_skips (stats ablated));
  (* The point of the breaker: deadline budget not burned at a hopeless
     site. The ablated run pays one overrun per restart. *)
  Alcotest.(check bool) "overruns avoided" true
    (Solver.deadline_overruns (stats br) < Solver.deadline_overruns (stats ablated));
  Alcotest.(check bool) "threshold overruns were real" true
    (Solver.deadline_overruns (stats br) >= 3);
  (* Skips degrade to the same verdict the solver would have reached. *)
  Alcotest.(check bool) "same verdict" true
    (br.Dart.Driver.verdict = ablated.Dart.Driver.verdict);
  Alcotest.(check int) "same run count" ablated.Dart.Driver.runs br.Dart.Driver.runs;
  Alcotest.(check int) "no bugs invented" 0 (List.length br.Dart.Driver.bugs);
  (* Breaker meters measure work avoided: they must stay out of the
     resume-identity counter set. *)
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " not in to_assoc") false
        (List.mem_assoc key (Solver.to_assoc (stats br))))
    [ "breaker_opens"; "breaker_skips" ];
  Alcotest.(check bool) "report prints the breaker line when it acted" true
    (Str_contains.contains (Dart.Driver.report_to_string br) "breaker:")

let test_no_breaker_identity_when_healthy () =
  (* No deadline overruns -> the breaker never acts -> byte-identical
     output with and without it, on a workload with plenty of solves. *)
  let run ~use_breaker =
    let prog = prepare ~depth:3 churn_src in
    let options =
      Dart.Driver.Options.make ~seed:7 ~depth:3 ~max_runs:200 ~stop_on_first_bug:false
        ~use_breaker ()
    in
    Dart.Driver.run ~options prog
  in
  let on = run ~use_breaker:true and off = run ~use_breaker:false in
  Alcotest.(check string) "reports byte-identical"
    (Dart.Driver.report_to_string off) (Dart.Driver.report_to_string on);
  Alcotest.(check bool) "the healthy run did solve" true
    (Solver.queries on.Dart.Driver.solver_stats > 0);
  Alcotest.(check int) "and never opened" 0
    (Solver.breaker_opens on.Dart.Driver.solver_stats)

(* ---- deadlines and interrupts ---------------------------------------------- *)

let test_time_budget () =
  let prog = prepare ~depth:6 churn_src in
  let options =
    Dart.Driver.Options.make ~depth:6 ~max_runs:10_000_000 ~stop_on_first_bug:false
      ~time_budget_ns:5_000_000L (* 5ms: far too little for 2^30 paths *) ()
  in
  let r = Dart.Driver.run ~options prog in
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Time_exhausted -> ()
   | _ -> Alcotest.fail "expected Time_exhausted");
  Alcotest.(check bool) "partial report: some runs happened" true (r.Dart.Driver.runs > 0);
  Alcotest.(check bool) "budget untouched" true (r.Dart.Driver.runs < 10_000_000)

let test_interrupt_verdicts () =
  let prog = prepare abort_src in
  Fun.protect ~finally:Dart.Cancel.reset (fun () ->
      Dart.Cancel.request ();
      let r =
        Dart.Driver.run ~options:(Dart.Driver.Options.make ~max_runs:100 ()) prog
      in
      (match r.Dart.Driver.verdict with
       | Dart.Driver.Interrupted -> ()
       | _ -> Alcotest.fail "directed: expected Interrupted");
      Alcotest.(check int) "directed: stopped before the first run" 0 r.Dart.Driver.runs;
      match (Dart.Random_search.run ~seed:1 ~max_runs:100 prog).Dart.Random_search.verdict with
      | `Interrupted -> ()
      | _ -> Alcotest.fail "random: expected `Interrupted")

let test_random_deadline () =
  let prog = prepare abort_src in
  let expired = Int64.sub (Dart.Telemetry.now ()) 1L in
  match
    (Dart.Random_search.run ~seed:1 ~max_runs:100 ~deadline:expired prog)
      .Dart.Random_search.verdict
  with
  | `Time_exhausted -> ()
  | _ -> Alcotest.fail "expected `Time_exhausted on an expired deadline"

(* ---- resource-limit classification ----------------------------------------- *)

let test_step_limit_is_not_a_bug () =
  let prog = prepare Workloads.Paper_examples.ac_controller in
  let options =
    Dart.Driver.Options.make ~depth:1 ~max_runs:50 ~stop_on_first_bug:false
      ~faultsim:(Faultsim.make [ (Faultsim.Machine_step_limit, None, 1) ])
      ()
  in
  let r = Dart.Driver.run ~options prog in
  Alcotest.(check int) "one resource-limited run" 1 r.Dart.Driver.resource_limited;
  Alcotest.(check int) "not recorded as a bug" 0 (List.length r.Dart.Driver.bugs);
  (* The truncated run's suffix paths were never visited, so the search
     must keep restarting instead of claiming completeness. *)
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Budget_exhausted -> ()
   | Dart.Driver.Complete -> Alcotest.fail "claimed completeness after a truncated run"
   | _ -> Alcotest.fail "expected Budget_exhausted");
  Alcotest.(check int) "budget fully used by restarts" 50 r.Dart.Driver.runs;
  Alcotest.(check bool) "the restart machinery ran" true (r.Dart.Driver.restarts > 0)

(* ---- solver deadline degradation ------------------------------------------- *)

let test_forced_unknown_is_retriable () =
  let prog = prepare abort_src in
  let sink = Dart.Telemetry.ring ~capacity:4096 in
  let options =
    Dart.Driver.Options.make ~seed:3 ~max_runs:100 ~use_cache:true
      ~faultsim:(Faultsim.make [ (Faultsim.Solver_deadline, None, 1) ])
      ~telemetry:(Dart.Telemetry.with_sink sink) ()
  in
  let r = Dart.Driver.run ~options prog in
  (* The first solve of x = 5 was forced Unknown. Were Unknown cached,
     every later attempt at the same canonical query would hit the
     poisoned entry and the bug would be unreachable. *)
  (match r.Dart.Driver.verdict with
   | Dart.Driver.Bug_found _ -> ()
   | _ -> Alcotest.fail "bug not found: the forced Unknown poisoned the search");
  Alcotest.(check int) "exactly one unknown" 1
    (Solver.unknown_count r.Dart.Driver.solver_stats);
  Alcotest.(check int) "counted as a deadline overrun" 1
    (Solver.deadline_overruns r.Dart.Driver.solver_stats);
  Alcotest.(check bool) "branch retried: later queries hit the solver" true
    (Solver.queries r.Dart.Driver.solver_stats > 1);
  let unknowns =
    List.filter
      (function
        | Dart.Telemetry.Solve_query { result = Dart.Telemetry.R_unknown; _ } -> true
        | _ -> false)
      (Dart.Telemetry.events sink)
  in
  Alcotest.(check int) "R_unknown recorded in telemetry" 1 (List.length unknowns)

let test_forced_unknown_incremental_matches_fresh () =
  (* The injected solver_deadline overrun aborts a solve running through
     the incremental context. If the overrun left stale prepared state
     behind, the follow-up queries would diverge from fresh-context
     solves — so the whole searches, incremental and not, must agree on
     every deterministic counter and on the bug witness. *)
  let prog = prepare abort_src in
  let run ~use_incremental =
    let options =
      Dart.Driver.Options.make ~seed:3 ~max_runs:100 ~use_cache:false ~use_incremental
        ~faultsim:(Faultsim.make [ (Faultsim.Solver_deadline, None, 1) ])
        ()
    in
    Dart.Driver.run ~options prog
  in
  let inc = run ~use_incremental:true and fresh = run ~use_incremental:false in
  Alcotest.(check string) "incremental search identical to fresh after forced overrun"
    (Dart.Driver.report_to_string fresh)
    (Dart.Driver.report_to_string inc);
  Alcotest.(check int) "overrun did hit the incremental run" 1
    (Solver.deadline_overruns inc.Dart.Driver.solver_stats)

(* ---- checkpoint codec ------------------------------------------------------ *)

let with_snapshot f =
  (* A real mid-flight snapshot, from the first periodic checkpoint of
     a churning search. *)
  let prog = prepare ~depth:3 churn_src in
  let options =
    Dart.Driver.Options.make ~seed:7 ~depth:3 ~max_runs:400 ~stop_on_first_bug:false
      ~use_cache:false ()
  in
  let snaps = ref [] in
  let full =
    Dart.Driver.run ~on_checkpoint:(fun s -> snaps := s :: !snaps) ~checkpoint_every:100
      ~options prog
  in
  match List.rev !snaps with
  | [] -> Alcotest.fail "no checkpoint was taken"
  | first :: _ -> f ~options ~prog ~full ~snapshot:first

let test_checkpoint_roundtrip () =
  with_snapshot (fun ~options ~prog:_ ~full:_ ~snapshot ->
      let meta = Dart.Checkpoint.meta_of_options options in
      let roundtrip s =
        match Dart.Checkpoint.of_string (Dart.Checkpoint.to_string meta s) with
        | Error e -> Alcotest.failf "roundtrip failed: %s" e
        | Ok (m, s') ->
          Alcotest.(check bool) "meta survives" true (m = meta);
          Alcotest.(check bool) "snapshot survives" true (s = s')
      in
      roundtrip snapshot;
      roundtrip { snapshot with Dart.Driver.sn_pending_restart = true };
      let text = Dart.Checkpoint.to_string meta snapshot in
      (match Dart.Checkpoint.of_string "" with
       | Ok _ -> Alcotest.fail "empty checkpoint accepted"
       | Error _ -> ());
      (match Dart.Checkpoint.of_string ("not-a-checkpoint\n" ^ text) with
       | Ok _ -> Alcotest.fail "bad magic accepted"
       | Error _ -> ());
      (* Truncation (e.g. a partial write with no trailing [end]) is a
         hard error, never a silently shorter snapshot. *)
      (match
         Dart.Checkpoint.of_string (String.concat "\n" (List.filteri (fun i _ -> i < 5)
           (String.split_on_char '\n' text)))
       with
       | Ok _ -> Alcotest.fail "truncated checkpoint accepted"
       | Error _ -> ()))

let test_checkpoint_meta_guard () =
  let meta m_seed m_strategy =
    { Dart.Checkpoint.m_seed; m_depth = 1; m_max_runs = 100; m_strategy;
      m_incremental = true; m_shared_cache = true }
  in
  let expected = meta 42 Dart.Strategy.Dfs in
  (match Dart.Checkpoint.check_meta ~expected ~found:(meta 43 Dart.Strategy.Dfs) with
   | Ok () -> Alcotest.fail "seed mismatch accepted"
   | Error e -> Alcotest.(check bool) "error names the seed" true
                  (Str_contains.contains e "--seed"));
  (match Dart.Checkpoint.check_meta ~expected ~found:(meta 42 Dart.Strategy.Bfs) with
   | Ok () -> Alcotest.fail "strategy mismatch accepted"
   | Error _ -> ());
  (* A snapshot taken under a different acceleration config must be
     rejected: flipping incremental or the shared store between save
     and resume would change the counters a resumed report prints. *)
  (match
     Dart.Checkpoint.check_meta ~expected
       ~found:{ expected with Dart.Checkpoint.m_incremental = false }
   with
   | Ok () -> Alcotest.fail "incremental mismatch accepted"
   | Error e -> Alcotest.(check bool) "error names incremental" true
                  (Str_contains.contains e "incremental"));
  (match
     Dart.Checkpoint.check_meta ~expected
       ~found:{ expected with Dart.Checkpoint.m_shared_cache = false }
   with
   | Ok () -> Alcotest.fail "shared-cache mismatch accepted"
   | Error e -> Alcotest.(check bool) "error names the shared store" true
                  (Str_contains.contains e "shared"));
  (* The run budget bounds the trajectory, it does not shape it:
     resuming under a larger budget extends the search. *)
  match
    Dart.Checkpoint.check_meta ~expected
      ~found:{ expected with Dart.Checkpoint.m_max_runs = 10 }
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "budget difference rejected: %s" e

let test_checkpoint_file_atomicity () =
  with_snapshot (fun ~options ~prog:_ ~full:_ ~snapshot ->
      let meta = Dart.Checkpoint.meta_of_options options in
      let path = Filename.temp_file "dart_ck" ".dart" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Dart.Checkpoint.save ~path ~meta snapshot;
          Alcotest.(check bool) "no temp file left behind" false
            (Sys.file_exists (path ^ ".tmp"));
          match Dart.Checkpoint.load ~path with
          | Error e -> Alcotest.failf "load failed: %s" e
          | Ok (m, s) ->
            Alcotest.(check bool) "file roundtrip" true (m = meta && s = snapshot)))

(* ---- resume determinism ---------------------------------------------------- *)

let norm (r : Dart.Driver.report) =
  ( r.Dart.Driver.verdict,
    r.Dart.Driver.runs,
    r.Dart.Driver.restarts,
    r.Dart.Driver.total_steps,
    r.Dart.Driver.paths_explored,
    r.Dart.Driver.resource_limited,
    List.sort compare r.Dart.Driver.coverage_sites,
    Solver.to_assoc r.Dart.Driver.solver_stats,
    r.Dart.Driver.bugs )

let test_resume_reaches_same_state () =
  with_snapshot (fun ~options ~prog ~full ~snapshot ->
      Alcotest.(check bool) "snapshot is mid-flight" true
        (snapshot.Dart.Driver.sn_runs < full.Dart.Driver.runs);
      let resumed = Dart.Driver.run ~resume:snapshot ~options prog in
      (* Without the solve cache the replay is exact: every counter of
         the resumed search equals the uninterrupted one, not just the
         final coverage. *)
      Alcotest.(check bool) "resumed report identical" true (norm full = norm resumed))

let test_resume_through_serialization () =
  with_snapshot (fun ~options ~prog ~full ~snapshot ->
      let meta = Dart.Checkpoint.meta_of_options options in
      match Dart.Checkpoint.of_string (Dart.Checkpoint.to_string meta snapshot) with
      | Error e -> Alcotest.failf "codec failed: %s" e
      | Ok (_, s) ->
        let resumed = Dart.Driver.run ~resume:s ~options prog in
        Alcotest.(check bool) "identical after a disk roundtrip" true
          (norm full = norm resumed))

(* ---- crash isolation ------------------------------------------------------- *)

let crash_run ~jobs ~spec =
  let prog = prepare Workloads.Paper_examples.ac_controller in
  let sink = Dart.Telemetry.ring ~capacity:4096 in
  let fs =
    match Faultsim.of_spec spec with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "bad spec %s: %s" spec e
  in
  let base =
    Dart.Driver.Options.make ~depth:1 ~stop_on_first_bug:false ~faultsim:fs
      ~telemetry:(Dart.Telemetry.with_sink sink) ()
  in
  let r = Dart.Parallel.run ~options:(Dart.Parallel.options ~jobs base) prog in
  let crash_events =
    List.filter_map
      (function
        | Dart.Telemetry.Worker_crash { worker; respawned; _ } -> Some (worker, respawned)
        | _ -> None)
      (Dart.Telemetry.events sink)
  in
  (r, crash_events)

let test_crash_isolation () =
  let r, crash_events = crash_run ~jobs:4 ~spec:"worker_crash@1" in
  (match r.Dart.Parallel.crashes with
   | [ c ] ->
     Alcotest.(check int) "worker 1 crashed" 1 c.Dart.Parallel.c_worker;
     Alcotest.(check bool) "respawned" true c.Dart.Parallel.c_respawned;
     Alcotest.(check bool) "injected exception named" true
       (Str_contains.contains c.Dart.Parallel.c_reason "worker_crash")
   | l -> Alcotest.failf "expected exactly one crash record, got %d" (List.length l));
  Alcotest.(check int) "exactly one Worker_crash event" 1 (List.length crash_events);
  Alcotest.(check int) "all four slots reported" 4 (List.length r.Dart.Parallel.workers);
  (* The survivors (and the respawn, re-running the dead slot's share)
     still explore everything: the crash costs work, not results. *)
  match r.Dart.Parallel.merged.Dart.Driver.verdict with
  | Dart.Driver.Complete -> ()
  | _ -> Alcotest.fail "expected Complete from the surviving workers"

let test_crash_without_respawn () =
  (* The respawn crashes too (same slot key, second occurrence): the
     slot's budget share is lost but the merge still joins the three
     survivors. *)
  let r, crash_events = crash_run ~jobs:4 ~spec:"worker_crash@2:1,worker_crash@2:2" in
  (match r.Dart.Parallel.crashes with
   | [ c1; c2 ] ->
     Alcotest.(check bool) "first crash respawned" true c1.Dart.Parallel.c_respawned;
     Alcotest.(check bool) "second crash is final" false c2.Dart.Parallel.c_respawned;
     Alcotest.(check bool) "fresh seed for the respawn" true
       (c1.Dart.Parallel.c_seed <> c2.Dart.Parallel.c_seed)
   | l -> Alcotest.failf "expected two crash records, got %d" (List.length l));
  Alcotest.(check int) "two Worker_crash events" 2 (List.length crash_events);
  Alcotest.(check int) "three survivors" 3 (List.length r.Dart.Parallel.workers);
  match r.Dart.Parallel.merged.Dart.Driver.verdict with
  | Dart.Driver.Complete -> ()
  | _ -> Alcotest.fail "expected Complete from the surviving workers"

let test_crash_single_worker () =
  let r, crash_events = crash_run ~jobs:1 ~spec:"worker_crash@0" in
  (match r.Dart.Parallel.crashes with
   | [ c ] -> Alcotest.(check bool) "respawned" true c.Dart.Parallel.c_respawned
   | l -> Alcotest.failf "expected one crash record, got %d" (List.length l));
  Alcotest.(check int) "one Worker_crash event" 1 (List.length crash_events);
  match r.Dart.Parallel.merged.Dart.Driver.verdict with
  | Dart.Driver.Complete -> ()
  | _ -> Alcotest.fail "expected Complete from the respawned worker"

(* ---- telemetry codec for the new events ------------------------------------ *)

let test_new_event_codec () =
  List.iter
    (fun e ->
      match Dart.Telemetry.event_of_json (Dart.Telemetry.event_to_json e) with
      | Ok e' -> Alcotest.(check bool) "json roundtrip" true (e = e')
      | Error msg -> Alcotest.failf "codec failed: %s" msg)
    [ Dart.Telemetry.Worker_crash { worker = 2; reason = "it \"died\"\nbadly"; respawned = true };
      Dart.Telemetry.Worker_crash { worker = 0; reason = ""; respawned = false };
      Dart.Telemetry.Checkpoint_saved { run = 512 } ]

let suite =
  [ Alcotest.test_case "faultsim: off is free" `Quick test_faultsim_off;
    Alcotest.test_case "faultsim: one-shot nth" `Quick test_faultsim_one_shot;
    Alcotest.test_case "faultsim: key narrowing" `Quick test_faultsim_key_narrowing;
    Alcotest.test_case "faultsim: spec parsing" `Quick test_faultsim_spec;
    Alcotest.test_case "chaos: schedules are seed-deterministic" `Quick
      test_chaos_determinism;
    Alcotest.test_case "chaos: recurring, key-blind, rate-checked" `Quick
      test_chaos_semantics;
    Alcotest.test_case "chaos: spec parsing" `Quick test_chaos_spec;
    Alcotest.test_case "breaker: state machine" `Quick test_breaker_state_machine;
    Alcotest.test_case "breaker: opens under forced overruns" `Quick
      test_breaker_under_forced_overruns;
    Alcotest.test_case "breaker: no-op on healthy workloads" `Quick
      test_no_breaker_identity_when_healthy;
    Alcotest.test_case "time budget verdict" `Quick test_time_budget;
    Alcotest.test_case "interrupt verdicts" `Quick test_interrupt_verdicts;
    Alcotest.test_case "random search deadline" `Quick test_random_deadline;
    Alcotest.test_case "step limit is not a bug" `Quick test_step_limit_is_not_a_bug;
    Alcotest.test_case "forced Unknown is retriable" `Quick test_forced_unknown_is_retriable;
    Alcotest.test_case "forced overrun: incremental matches fresh" `Quick
      test_forced_unknown_incremental_matches_fresh;
    Alcotest.test_case "checkpoint codec roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint meta guard" `Quick test_checkpoint_meta_guard;
    Alcotest.test_case "checkpoint file atomicity" `Quick test_checkpoint_file_atomicity;
    Alcotest.test_case "resume reaches same state" `Quick test_resume_reaches_same_state;
    Alcotest.test_case "resume through serialization" `Quick test_resume_through_serialization;
    Alcotest.test_case "crash isolation at jobs=4" `Quick test_crash_isolation;
    Alcotest.test_case "crash without respawn" `Quick test_crash_without_respawn;
    Alcotest.test_case "crash at jobs=1" `Quick test_crash_single_worker;
    Alcotest.test_case "new event json codec" `Quick test_new_event_codec ]
